//! Assembly of complete time-bounded protocol instances, and outcome
//! extraction for the property checkers.
//!
//! A [`ChainSetup`] owns everything a run needs — topology, keys, value
//! plan, synchrony parameters, derived timeout schedule — and builds
//! engines under any network model, clock plan, and set of Byzantine
//! substitutions. Runs are pure functions of `(setup, net, oracle, clocks)`.

use crate::msg::PMsg;
use crate::timebounded::customers::{AliceProcess, BobProcess, ChloeProcess, CustomerOutcome};
use crate::timebounded::escrow::{EscrowProcess, EscrowState};
use crate::timing::{SyncParams, TimeoutSchedule};
use crate::topology::{ChainKeys, ChainTopology, Role, ValuePlan};
use anta::clock::DriftClock;
use anta::engine::{Engine, EngineConfig};
use anta::net::NetModel;
use anta::oracle::Oracle;
use anta::process::{Pid, Process};
use anta::time::{SimDuration, SimTime};
use ledger::Ledger;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xcrypto::{PaymentId, Pki};

/// How local clocks are assigned to participants.
#[derive(Debug, Clone, Copy)]
pub enum ClockPlan {
    /// Everybody keeps perfect time (ρ = 0).
    Perfect,
    /// Each clock sampled uniformly within the drift envelope, offsets up
    /// to one hop.
    Sampled {
        /// Deterministic sampling seed.
        seed: u64,
    },
    /// Adversarial extremes: escrows run maximally fast clocks and
    /// customers maximally slow ones — the worst case for premature
    /// timeouts.
    Extremes,
}

impl ClockPlan {
    fn clock_for(&self, pid: Pid, topo: &ChainTopology, p: &SyncParams) -> DriftClock {
        match self {
            ClockPlan::Perfect => DriftClock::perfect(),
            ClockPlan::Sampled { seed } => {
                // Derive per-pid deterministically so runs are reproducible
                // regardless of construction order.
                let mut rng =
                    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(pid as u64));
                DriftClock::sample(p.rho_ppm, p.hop(), &mut rng)
            }
            ClockPlan::Extremes => match topo.role_of(pid) {
                Some(Role::Escrow(_)) => DriftClock::fastest(p.rho_ppm),
                _ => DriftClock::slowest(p.rho_ppm),
            },
        }
    }
}

/// One complete payment-instance configuration.
pub struct ChainSetup {
    /// The Figure 1 chain topology.
    pub topo: ChainTopology,
    /// The value plan / patience plan, per context.
    pub plan: ValuePlan,
    /// The cell's parameters.
    pub params: SyncParams,
    /// The derived timeout schedule.
    pub schedule: TimeoutSchedule,
    /// The payment instance this belongs to.
    pub payment: PaymentId,
    /// Shared verification registry.
    pub pki: Arc<Pki>,
    keys: ChainKeysLite,
}

/// Keys kept after PKI is frozen behind an `Arc`.
struct ChainKeysLite {
    customers: Vec<xcrypto::Signer>,
    escrows: Vec<xcrypto::Signer>,
}

impl ChainSetup {
    /// Creates a setup for `n` escrows. The schedule is derived from
    /// `params`; use [`ChainSetup::with_schedule`] to override it (e.g. the
    /// E6 ablations run deliberately broken schedules).
    pub fn new(n: usize, plan: ValuePlan, params: SyncParams, seed: u64) -> Self {
        assert_eq!(plan.hops(), n, "value plan must cover every escrow");
        let topo = ChainTopology::new(n);
        let keys = ChainKeys::generate(&topo, seed);
        let schedule = TimeoutSchedule::derive(n, &params);
        ChainSetup {
            topo,
            plan,
            params,
            schedule,
            payment: keys.payment,
            pki: Arc::new(keys.pki),
            keys: ChainKeysLite {
                customers: keys.customers,
                escrows: keys.escrows,
            },
        }
    }

    /// Replaces the timeout schedule (ablation experiments).
    pub fn with_schedule(mut self, schedule: TimeoutSchedule) -> Self {
        assert_eq!(schedule.n(), self.topo.n);
        self.schedule = schedule;
        self
    }

    /// Number of escrows.
    pub fn n(&self) -> usize {
        self.topo.n
    }

    /// Bob's key.
    pub fn bob_key(&self) -> xcrypto::KeyId {
        self.keys.customers[self.topo.n].id()
    }

    /// Signer of customer `c_i` (used by Byzantine strategies that need an
    /// authentic identity).
    pub fn customer_signer(&self, i: usize) -> &xcrypto::Signer {
        &self.keys.customers[i]
    }

    /// Signer of escrow `e_i`.
    pub fn escrow_signer(&self, i: usize) -> &xcrypto::Signer {
        &self.keys.escrows[i]
    }

    /// The default (compliant) process for a role.
    pub fn default_process(&self, role: Role) -> Box<dyn Process<PMsg>> {
        let n = self.topo.n;
        let bob_key = self.bob_key();
        match role {
            Role::Alice => Box::new(AliceProcess::new(
                self.topo.escrow_pid(0),
                self.keys.escrows[0].id(),
                bob_key,
                self.pki.clone(),
                self.payment,
                self.plan.amounts[0],
                self.schedule.d[0],
            )),
            Role::Chloe(i) => Box::new(ChloeProcess::new(
                i,
                self.topo.escrow_pid(i - 1),
                self.topo.escrow_pid(i),
                self.keys.escrows[i - 1].id(),
                self.keys.escrows[i].id(),
                bob_key,
                self.pki.clone(),
                self.payment,
                self.plan.amounts[i],
                self.plan.amounts[i - 1],
                self.schedule.d[i],
                self.schedule.a[i - 1],
            )),
            Role::Bob => Box::new(BobProcess::new(
                self.topo.escrow_pid(n - 1),
                self.keys.escrows[n - 1].id(),
                self.keys.customers[n].clone(),
                self.pki.clone(),
                self.payment,
                self.plan.amounts[n - 1],
                self.schedule.a[n - 1],
            )),
            Role::Escrow(i) => {
                let up_key = self.keys.customers[i].id();
                let down_key = self.keys.customers[i + 1].id();
                let mut book = Ledger::new();
                book.open_account(up_key).expect("fresh ledger");
                book.open_account(down_key).expect("fresh ledger");
                // The upstream customer's working capital lives here.
                book.mint(up_key, self.plan.amounts[i])
                    .expect("fresh ledger");
                Box::new(EscrowProcess::new(
                    i,
                    self.topo.customer_pid(i),
                    self.topo.customer_pid(i + 1),
                    up_key,
                    down_key,
                    bob_key,
                    self.keys.escrows[i].clone(),
                    self.pki.clone(),
                    self.payment,
                    self.plan.amounts[i],
                    &self.schedule,
                    book,
                ))
            }
        }
    }

    /// Builds an engine with compliant participants everywhere.
    pub fn build_engine(
        &self,
        net: Box<dyn NetModel<PMsg>>,
        oracle: Box<dyn Oracle>,
        clocks: ClockPlan,
    ) -> Engine<PMsg> {
        self.build_engine_with(net, oracle, clocks, |_| None)
    }

    /// The engine configuration this setup derives: σ from the cell's
    /// parameters, horizon generously beyond every deadline in the
    /// schedule. Callers may tweak it (e.g. counters-only tracing for
    /// exhaustive exploration) and pass it to
    /// [`ChainSetup::build_engine_cfg`].
    pub fn engine_config(&self) -> EngineConfig {
        let worst = self
            .schedule
            .d
            .first()
            .copied()
            .unwrap_or(SimDuration::ZERO)
            .saturating_mul(8)
            .saturating_add(SimDuration::from_secs(10));
        EngineConfig {
            sigma_max: self.params.sigma,
            sigma_buckets: 4,
            max_real_time: SimTime::ZERO + worst,
            ..EngineConfig::default()
        }
    }

    /// Builds an engine, substituting the processes for which `override_for`
    /// returns `Some` (Byzantine strategies, crash faults, baseline
    /// variants).
    pub fn build_engine_with(
        &self,
        net: Box<dyn NetModel<PMsg>>,
        oracle: Box<dyn Oracle>,
        clocks: ClockPlan,
        override_for: impl FnMut(Role) -> Option<Box<dyn Process<PMsg>>>,
    ) -> Engine<PMsg> {
        self.build_engine_cfg(net, oracle, clocks, self.engine_config(), override_for)
    }

    /// Builds an engine under an explicit engine configuration. Changing
    /// anything that affects scheduling choices (σ quantisation, horizon)
    /// changes the schedule tree; changing only `trace_mode` does not.
    pub fn build_engine_cfg(
        &self,
        net: Box<dyn NetModel<PMsg>>,
        oracle: Box<dyn Oracle>,
        clocks: ClockPlan,
        cfg: EngineConfig,
        mut override_for: impl FnMut(Role) -> Option<Box<dyn Process<PMsg>>>,
    ) -> Engine<PMsg> {
        let mut eng = Engine::new(net, oracle, cfg);
        for pid in 0..self.topo.participants() {
            let role = self.topo.role_of(pid).expect("chain pid");
            let proc = override_for(role).unwrap_or_else(|| self.default_process(role));
            let clock = clocks.clock_for(pid, &self.topo, &self.params);
            let got = eng.add_process(proc, clock);
            debug_assert_eq!(got, pid);
        }
        eng
    }
}

/// A customer's extracted end-of-run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomerView {
    /// Terminal protocol outcome.
    pub outcome: CustomerOutcome,
    /// Whether the customer parted with her money.
    pub sent_money: bool,
    /// Real halt time, if halted.
    pub halted_at: Option<SimTime>,
    /// Halt time on the customer's own clock, if halted.
    pub halted_local: Option<SimTime>,
}

/// Everything the property checkers need from a finished run.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Views for customers `c_0..=c_n`; `None` where the process was
    /// substituted (Byzantine) and exposes no compliant view.
    pub customers: Vec<Option<CustomerView>>,
    /// Final escrow control states (`None` for substituted escrows).
    pub escrow_states: Vec<Option<EscrowState>>,
    /// Per-escrow conservation audit (`None` for substituted escrows).
    pub conservation: Vec<Option<bool>>,
    /// Net value change per customer, summed across both adjacent escrows
    /// in currency units (only meaningful for single-currency plans).
    pub net_positions: Vec<Option<i64>>,
    /// Whether Bob issued χ (also `Some` only for a compliant Bob).
    pub bob_issued_chi: Option<bool>,
    /// Local time at which Alice sent her money (start of her T-bound
    /// clock), when a compliant Alice did.
    pub alice_sent_local: Option<SimTime>,
    /// True when the run ended because the event queue drained.
    pub quiescent: bool,
}

impl ChainOutcome {
    /// Extracts the outcome from a finished engine.
    pub fn extract(eng: &Engine<PMsg>, setup: &ChainSetup, quiescent: bool) -> Self {
        let n = setup.n();
        let topo = &setup.topo;
        let mut customers = Vec::with_capacity(n + 1);
        let mut bob_issued_chi = None;
        let mut alice_sent_local = None;
        for i in 0..=n {
            let pid = topo.customer_pid(i);
            let halted_at = eng.trace().halt_time(pid);
            let halted_local = eng.trace().halt_local_time(pid);
            let view = if i == 0 {
                eng.process_as::<AliceProcess>(pid).map(|a| {
                    alice_sent_local = a.sent_money_at();
                    CustomerView {
                        outcome: a.outcome(),
                        sent_money: a.sent_money(),
                        halted_at,
                        halted_local,
                    }
                })
            } else if i == n {
                eng.process_as::<BobProcess>(pid).map(|b| {
                    bob_issued_chi = Some(b.issued_chi());
                    CustomerView {
                        outcome: b.outcome(),
                        sent_money: false,
                        halted_at,
                        halted_local,
                    }
                })
            } else {
                eng.process_as::<ChloeProcess>(pid).map(|c| CustomerView {
                    outcome: c.outcome(),
                    sent_money: c.sent_money(),
                    halted_at,
                    halted_local,
                })
            };
            customers.push(view);
        }
        let mut escrow_states = Vec::with_capacity(n);
        let mut conservation = Vec::with_capacity(n);
        for i in 0..n {
            let pid = topo.escrow_pid(i);
            match eng.process_as::<EscrowProcess>(pid) {
                Some(e) => {
                    escrow_states.push(Some(e.state()));
                    conservation.push(Some(e.ledger().check_conservation().is_ok()));
                }
                None => {
                    escrow_states.push(None);
                    conservation.push(None);
                }
            }
        }
        // Net positions: initial capital is plan.amounts[i] minted for c_i
        // at e_i (i < n); final worth is c_i's balances at e_{i-1} and e_i.
        let mut net_positions = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let key = setup.keys.customers[i].id();
            let mut known = true;
            let mut worth: i64 = 0;
            if i < n {
                match eng.process_as::<EscrowProcess>(topo.escrow_pid(i)) {
                    Some(e) => {
                        let cur = setup.plan.amounts[i].currency;
                        worth += e.ledger().balance(key, cur) as i64;
                        worth -= setup.plan.amounts[i].amount as i64; // initial capital
                    }
                    None => known = false,
                }
            }
            if i > 0 {
                match eng.process_as::<EscrowProcess>(topo.escrow_pid(i - 1)) {
                    Some(e) => {
                        let cur = setup.plan.amounts[i - 1].currency;
                        worth += e.ledger().balance(key, cur) as i64;
                    }
                    None => known = false,
                }
            }
            net_positions.push(known.then_some(worth));
        }
        ChainOutcome {
            n,
            customers,
            escrow_states,
            conservation,
            net_positions,
            bob_issued_chi,
            alice_sent_local,
            quiescent,
        }
    }

    /// True when Bob terminated paid.
    pub fn bob_paid(&self) -> bool {
        matches!(
            self.customers.last().and_then(|v| *v),
            Some(CustomerView {
                outcome: CustomerOutcome::Paid,
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anta::net::SyncNet;
    use anta::oracle::RandomOracle;

    fn setup(n: usize) -> ChainSetup {
        ChainSetup::new(n, ValuePlan::uniform(n, 100), SyncParams::baseline(), 42)
    }

    fn run(setup: &ChainSetup, seed: u64, clocks: ClockPlan) -> ChainOutcome {
        let mut eng = setup.build_engine(
            Box::new(SyncNet::new(setup.params.delta, 16)),
            Box::new(RandomOracle::seeded(seed)),
            clocks,
        );
        let report = eng.run();
        ChainOutcome::extract(&eng, setup, report.quiescent)
    }

    #[test]
    fn single_hop_payment_succeeds() {
        let s = setup(1);
        let o = run(&s, 1, ClockPlan::Perfect);
        assert!(o.bob_paid(), "{o:?}");
        assert_eq!(o.customers[0].unwrap().outcome, CustomerOutcome::GotReceipt);
        assert_eq!(o.escrow_states[0], Some(EscrowState::Paid));
        assert_eq!(o.conservation[0], Some(true));
        // Alice down 100, Bob up 100.
        assert_eq!(o.net_positions[0], Some(-100));
        assert_eq!(o.net_positions[1], Some(100));
    }

    #[test]
    fn five_hop_payment_succeeds_with_drift() {
        let s = setup(5);
        for seed in 0..5 {
            let o = run(&s, seed, ClockPlan::Sampled { seed });
            assert!(o.bob_paid(), "seed {seed}: {o:?}");
            for i in 1..5 {
                assert_eq!(
                    o.customers[i].unwrap().outcome,
                    CustomerOutcome::Reimbursed,
                    "Chloe{i} (seed {seed})"
                );
                assert_eq!(o.net_positions[i], Some(0), "uniform plan: zero commission");
            }
            assert!(o.conservation.iter().all(|c| *c == Some(true)));
        }
    }

    #[test]
    fn extreme_clocks_still_succeed() {
        // The whole point of the fine-tuned schedule: adversarial drift
        // within the envelope cannot break Theorem 1.
        let s = setup(4);
        let o = run(&s, 7, ClockPlan::Extremes);
        assert!(o.bob_paid(), "{o:?}");
    }

    #[test]
    fn commission_plan_pays_connectors() {
        let n = 3;
        let s = ChainSetup::new(
            n,
            ValuePlan::with_commission(n, 100, 5),
            SyncParams::baseline(),
            9,
        );
        let o = run(&s, 3, ClockPlan::Perfect);
        assert!(o.bob_paid());
        // Chloe1 net +5, Chloe2 net +5; Alice −100; Bob +90.
        assert_eq!(
            o.net_positions,
            vec![Some(-100), Some(5), Some(5), Some(90)]
        );
    }

    #[test]
    fn all_customers_terminate() {
        let s = setup(3);
        let o = run(&s, 11, ClockPlan::Sampled { seed: 2 });
        for (i, c) in o.customers.iter().enumerate() {
            assert!(
                c.unwrap().halted_at.is_some(),
                "customer {i} did not terminate"
            );
        }
        assert!(o.quiescent);
    }
}
