//! Figure 2 as *data*: the declarative ANTA automata for every participant.
//!
//! These specs mirror the executable processes of [`super::escrow`] and
//! [`super::customers`] state-for-state, but carry no ledger — they are the
//! paper's diagram, executable as automata. Experiment E4 uses them to
//! (a) regenerate Figure 2 as Graphviz DOT and (b) cross-check the
//! executable protocol: under identical deterministic schedules, the
//! message-kind sequences of the two implementations must coincide, and
//! under exhaustive schedule exploration on small chains the automata
//! satisfy the same safety outcomes.

use crate::msg::{PMsg, PromiseKind, SignedPromise};
use crate::timing::TimeoutSchedule;
use crate::topology::ChainTopology;
use anta::automaton::{AutomatonBuilder, AutomatonSpec, VarStore};
use anta::process::Pid;
use ledger::Asset;
use std::sync::Arc;
use xcrypto::{KeyId, PaymentId, Pki, Receipt, Signer};

/// Everything the spec builders need about one payment instance.
pub struct Fig2Params {
    /// The Figure 1 chain topology.
    pub topo: ChainTopology,
    /// The payment instance this belongs to.
    pub payment: PaymentId,
    /// Shared verification registry.
    pub pki: Arc<Pki>,
    /// Bob's signing key (the receipt must verify against it).
    pub bob_key: KeyId,
    /// The derived timeout schedule.
    pub schedule: TimeoutSchedule,
    /// Value at each hop.
    pub amounts: Vec<Asset>,
    /// Escrow signers (for issuing promises) and Bob's signer (for χ).
    pub escrow_signers: Vec<Signer>,
    /// Bob's signer (issues the receipt).
    pub bob_signer: Signer,
}

fn is_money(m: &PMsg, payment: PaymentId, asset: Asset) -> bool {
    matches!(m, PMsg::Money { payment: p, asset: a } if *p == payment && *a == asset)
}

fn is_valid_chi(m: &PMsg, payment: PaymentId, pki: &Pki, bob: KeyId) -> bool {
    matches!(m, PMsg::Receipt(chi) if chi.payment == payment && chi.verify(pki, bob))
}

fn is_promise(m: &PMsg, kind: PromiseKind, payment: PaymentId) -> bool {
    matches!(m, PMsg::Promise(p) if p.kind == kind && p.payment == payment)
}

/// The escrow `e_i` automaton of Figure 2.
///
/// ```text
/// ● send G(d_i) → ○ await $ → ● send P(a_i), u := now → ○ await χ
///      (from c_i)                    (to c_{i+1})          │  \
///                                      χ in time ──────────┘   \ now ≥ u + a_i
///                                      ● send χ to c_i          ● send $ to c_i
///                                      ● send $ to c_{i+1}      ○ refunded
///                                      ○ done
/// ```
pub fn escrow_spec(p: &Fig2Params, i: usize) -> AutomatonSpec<PMsg> {
    let up: Pid = p.topo.customer_pid(i);
    let down: Pid = p.topo.customer_pid(i + 1);
    let payment = p.payment;
    let asset = p.amounts[i];
    let a_i = p.schedule.a[i];
    let d_i = p.schedule.d[i];
    let signer = p.escrow_signers[i].clone();
    let signer2 = signer.clone();
    let pki = p.pki.clone();
    let bob = p.bob_key;

    let mut b = AutomatonBuilder::new(format!("escrow_{i}"));
    let send_g = b.output_state("send_G");
    let await_money = b.input_state("await_$");
    let send_p = b.output_state("send_P");
    let await_chi = b.input_state("await_chi");
    let fwd_chi = b.output_state("send_chi_up");
    let pay_down = b.output_state("send_$_down");
    let done = b.input_state("done");
    let refund = b.output_state("send_$_refund");
    let refunded = b.input_state("refunded");
    b.clock_vars(1); // u
    b.initial(send_g);

    b.send(
        send_g,
        await_money,
        up,
        move |_| {
            PMsg::Promise(SignedPromise::issue(
                &signer,
                PromiseKind::Guarantee,
                payment,
                i,
                d_i,
            ))
        },
        None,
    );
    b.receive(
        await_money,
        send_p,
        up,
        move |m, _| is_money(m, payment, asset),
        None,
    );
    b.send(
        send_p,
        await_chi,
        down,
        move |_| {
            PMsg::Promise(SignedPromise::issue(
                &signer2,
                PromiseKind::Promise,
                payment,
                i,
                a_i,
            ))
        },
        // u := now — on leaving the grey state, per Figure 2.
        Some(Arc::new(|st: &mut VarStore, now, _| st.clocks[0] = now)),
    );
    b.receive(
        await_chi,
        fwd_chi,
        down,
        move |m, _| is_valid_chi(m, payment, &pki, bob),
        // Remember χ so the grey states can forward it. Registers hold
        // i64, so we stash nothing — the forward closure re-issues from
        // the captured receipt… but χ must be BOB's signature, so the
        // forwarding states clone the received message instead: see
        // `reg[0]` trick below (set to 1 when χ captured).
        Some(Arc::new(|st: &mut VarStore, _, _| {
            if !st.regs.is_empty() {
                st.regs[0] = 1;
            }
        })),
    );
    b.regs(1);
    // Forwarding χ: the automaton cannot re-sign Bob's certificate, and the
    // declarative layer has no message store; we model the forwarded χ as a
    // fresh `Receipt` value signed by Bob's key, which is byte-identical to
    // the real one (deterministic signature over the same payload).
    let bob_signer = p.bob_signer.clone();
    b.send(
        fwd_chi,
        pay_down,
        up,
        move |_| PMsg::Receipt(Receipt::issue(&bob_signer, payment)),
        None,
    );
    b.send(
        pay_down,
        done,
        down,
        move |_| PMsg::Money { payment, asset },
        None,
    );
    b.timeout(await_chi, refund, 0, a_i, None);
    b.send(
        refund,
        refunded,
        up,
        move |_| PMsg::Money { payment, asset },
        None,
    );
    b.build().expect("escrow spec is well-formed")
}

/// Alice's automaton (`c_0`).
pub fn alice_spec(p: &Fig2Params) -> AutomatonSpec<PMsg> {
    let escrow = p.topo.escrow_pid(0);
    let payment = p.payment;
    let asset = p.amounts[0];
    let pki = p.pki.clone();
    let pki2 = p.pki.clone();
    let bob = p.bob_key;
    let e0_key = p.escrow_signers[0].id();

    let mut b = AutomatonBuilder::new("alice");
    let await_g = b.input_state("await_G");
    let pay = b.output_state("send_$");
    let await_outcome = b.input_state("await_outcome");
    let got_refund = b.input_state("refunded");
    let got_chi = b.input_state("got_chi");
    b.initial(await_g);
    b.receive(
        await_g,
        pay,
        escrow,
        move |m, _| {
            is_promise(m, PromiseKind::Guarantee, payment)
                && matches!(m, PMsg::Promise(pr) if pr.verify(&pki, e0_key))
        },
        None,
    );
    b.send(
        pay,
        await_outcome,
        escrow,
        move |_| PMsg::Money { payment, asset },
        None,
    );
    b.receive(
        await_outcome,
        got_refund,
        escrow,
        move |m, _| is_money(m, payment, asset),
        None,
    );
    b.receive(
        await_outcome,
        got_chi,
        escrow,
        move |m, _| is_valid_chi(m, payment, &pki2, bob),
        None,
    );
    b.build().expect("alice spec is well-formed")
}

/// Chloe_i's automaton (`c_i`, `0 < i < n`). Promises may arrive in either
/// order (diamond at the start).
pub fn chloe_spec(p: &Fig2Params, i: usize) -> AutomatonSpec<PMsg> {
    let up_escrow = p.topo.escrow_pid(i - 1);
    let down_escrow = p.topo.escrow_pid(i);
    let payment = p.payment;
    let send_asset = p.amounts[i];
    let recv_asset = p.amounts[i - 1];
    let pki = p.pki.clone();
    let bob = p.bob_key;

    let mut b = AutomatonBuilder::new(format!("chloe_{i}"));
    let start = b.input_state("await_promises");
    let has_g = b.input_state("has_G");
    let has_p = b.input_state("has_P");
    let pay = b.output_state("send_$");
    let await_outcome = b.input_state("await_outcome");
    let refunded = b.input_state("refunded");
    let fwd = b.output_state("fwd_chi");
    let await_reimb = b.input_state("await_reimb");
    let reimbursed = b.input_state("reimbursed");
    b.initial(start);

    let g_guard = move |m: &PMsg, _: &VarStore| is_promise(m, PromiseKind::Guarantee, payment);
    let p_guard = move |m: &PMsg, _: &VarStore| is_promise(m, PromiseKind::Promise, payment);
    b.receive(start, has_g, down_escrow, g_guard, None);
    b.receive(start, has_p, up_escrow, p_guard, None);
    b.receive(has_g, pay, up_escrow, p_guard, None);
    b.receive(has_p, pay, down_escrow, g_guard, None);
    b.send(
        pay,
        await_outcome,
        down_escrow,
        move |_| PMsg::Money {
            payment,
            asset: send_asset,
        },
        None,
    );
    b.receive(
        await_outcome,
        refunded,
        down_escrow,
        move |m, _| is_money(m, payment, send_asset),
        None,
    );
    let pki3 = pki.clone();
    b.receive(
        await_outcome,
        fwd,
        down_escrow,
        move |m, _| is_valid_chi(m, payment, &pki3, bob),
        None,
    );
    let bob_signer = p.bob_signer.clone();
    b.send(
        fwd,
        await_reimb,
        up_escrow,
        move |_| PMsg::Receipt(Receipt::issue(&bob_signer, payment)),
        None,
    );
    b.receive(
        await_reimb,
        reimbursed,
        up_escrow,
        move |m, _| is_money(m, payment, recv_asset),
        None,
    );
    b.build().expect("chloe spec is well-formed")
}

/// Bob's automaton (`c_n`).
pub fn bob_spec(p: &Fig2Params) -> AutomatonSpec<PMsg> {
    let n = p.topo.n;
    let escrow = p.topo.escrow_pid(n - 1);
    let payment = p.payment;
    let asset = p.amounts[n - 1];
    let bob_signer = p.bob_signer.clone();

    let mut b = AutomatonBuilder::new("bob");
    let await_p = b.input_state("await_P");
    let send_chi = b.output_state("send_chi");
    let await_money = b.input_state("await_$");
    let paid = b.input_state("paid");
    b.initial(await_p);
    b.receive(
        await_p,
        send_chi,
        escrow,
        move |m, _| is_promise(m, PromiseKind::Promise, payment),
        None,
    );
    b.send(
        send_chi,
        await_money,
        escrow,
        move |_| PMsg::Receipt(Receipt::issue(&bob_signer, payment)),
        None,
    );
    b.receive(
        await_money,
        paid,
        escrow,
        move |m, _| is_money(m, payment, asset),
        None,
    );
    b.build().expect("bob spec is well-formed")
}

/// Builds all Figure 2 specs for a chain, in pid order
/// (customers `c_0..=c_n`, then escrows `e_0..e_{n-1}`).
pub fn all_specs(p: &Fig2Params) -> Vec<AutomatonSpec<PMsg>> {
    let n = p.topo.n;
    let mut specs = Vec::with_capacity(2 * n + 1);
    specs.push(alice_spec(p));
    for i in 1..n {
        specs.push(chloe_spec(p, i));
    }
    specs.push(bob_spec(p));
    for i in 0..n {
        specs.push(escrow_spec(p, i));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::SyncParams;
    use crate::topology::{ChainKeys, ValuePlan};
    use anta::automaton::AutomatonProcess;
    use anta::clock::DriftClock;
    use anta::engine::{Engine, EngineConfig};
    use anta::net::SyncNet;
    use anta::oracle::RandomOracle;
    use anta::time::SimTime;

    fn params(n: usize) -> Fig2Params {
        let topo = ChainTopology::new(n);
        let keys = ChainKeys::generate(&topo, 5);
        let plan = ValuePlan::uniform(n, 100);
        Fig2Params {
            payment: keys.payment,
            bob_key: keys.customers[n].id(),
            schedule: TimeoutSchedule::derive(n, &SyncParams::baseline()),
            amounts: plan.amounts,
            bob_signer: keys.customers[n].clone(),
            escrow_signers: keys.escrows.clone(),
            pki: Arc::new(keys.pki),
            topo,
        }
    }

    fn build_engine(p: &Fig2Params, seed: u64) -> Engine<PMsg> {
        let mut eng = Engine::new(
            Box::new(SyncNet::new(SyncParams::baseline().delta, 8)),
            Box::new(RandomOracle::seeded(seed)),
            EngineConfig::default(),
        );
        for spec in all_specs(p) {
            eng.add_process(
                Box::new(AutomatonProcess::new(Arc::new(spec))),
                DriftClock::perfect(),
            );
        }
        eng
    }

    #[test]
    fn declarative_chain_completes_happy_path() {
        for n in 1..=4 {
            let p = params(n);
            let mut eng = build_engine(&p, 3);
            eng.run_until(SimTime::from_secs(3_600));
            // Alice ends in got_chi, Bob in paid, escrows in done.
            let alice = eng.process_as::<AutomatonProcess<PMsg>>(0).unwrap();
            assert_eq!(alice.state_name(), "got_chi", "n = {n}");
            let bob = eng
                .process_as::<AutomatonProcess<PMsg>>(p.topo.customer_pid(n))
                .unwrap();
            assert_eq!(bob.state_name(), "paid", "n = {n}");
            for i in 0..n {
                let e = eng
                    .process_as::<AutomatonProcess<PMsg>>(p.topo.escrow_pid(i))
                    .unwrap();
                assert_eq!(e.state_name(), "done", "escrow {i}, n = {n}");
            }
            for i in 1..n {
                let c = eng
                    .process_as::<AutomatonProcess<PMsg>>(p.topo.customer_pid(i))
                    .unwrap();
                assert_eq!(c.state_name(), "reimbursed", "chloe {i}, n = {n}");
            }
        }
    }

    #[test]
    fn specs_render_figure2_dot() {
        let p = params(2);
        for spec in all_specs(&p) {
            let dot = spec.to_dot();
            assert!(dot.contains("digraph"));
            assert!(
                dot.contains("fillcolor=grey"),
                "{} has grey states",
                spec.name
            );
        }
        // The escrow automaton has the paper's 9 states and 8 transitions.
        let e = escrow_spec(&p, 0);
        assert_eq!(e.n_states(), 9);
        assert_eq!(e.n_transitions(), 8);
    }

    #[test]
    fn escrow_timeout_path_in_declarative_model() {
        // Drop Bob (replace with an inert process): escrows refund, Alice
        // ends refunded.
        let p = params(2);
        let mut eng = Engine::new(
            Box::new(SyncNet::worst_case(SyncParams::baseline().delta)),
            Box::new(RandomOracle::seeded(1)),
            EngineConfig::default(),
        );
        let specs = all_specs(&p);
        let bob_pid = p.topo.customer_pid(2);
        for (pid, spec) in specs.into_iter().enumerate() {
            if pid == bob_pid {
                eng.add_process(Box::new(anta::process::InertProcess), DriftClock::perfect());
            } else {
                eng.add_process(
                    Box::new(AutomatonProcess::new(Arc::new(spec))),
                    DriftClock::perfect(),
                );
            }
        }
        eng.run_until(SimTime::from_secs(3_600));
        let alice = eng.process_as::<AutomatonProcess<PMsg>>(0).unwrap();
        assert_eq!(alice.state_name(), "refunded");
        let chloe = eng.process_as::<AutomatonProcess<PMsg>>(1).unwrap();
        assert_eq!(chloe.state_name(), "refunded");
        for i in 0..2 {
            let e = eng
                .process_as::<AutomatonProcess<PMsg>>(p.topo.escrow_pid(i))
                .unwrap();
            assert_eq!(e.state_name(), "refunded", "escrow {i}");
        }
    }
}
