//! Alice, the connectors (Chloe_i) and Bob — the customer automata of
//! Figure 2, executable.
//!
//! * **Alice (c_0)**: awaits `G(d_0)` from `e_0`, sends $, then awaits
//!   either her money back or the certificate χ.
//! * **Chloe_i (c_i)**: awaits `G(d_i)` from `e_i` *and* `P(a_{i-1})` from
//!   `e_{i-1}` (in either order — the asynchronous network may reorder),
//!   then sends $ to `e_i` and waits for `e_i` to return either χ or the
//!   money. On refund her work is done; on χ she forwards it to `e_{i-1}`
//!   and awaits her money from there.
//! * **Bob (c_n)**: awaits `P(a_{n-1})`, issues and sends χ, awaits $.
//!
//! Each process validates every promise and certificate signature and
//! checks promised bounds against the agreed schedule: accepting a
//! shortened `P(a)` from a Byzantine escrow would silently void the
//! customer-security analysis, so an abiding customer refuses to proceed
//! and (safely) never sends money.

use crate::msg::{PMsg, PromiseKind};
use anta::process::{Ctx, Pid, Process, TimerId};
use anta::time::SimTime;
use ledger::Asset;
use std::sync::Arc;
use xcrypto::{KeyId, PaymentId, Pki, Receipt, Signer};

/// Where a customer's run ended (for property checking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomerOutcome {
    /// Still in protocol (non-terminated).
    Pending,
    /// Terminated holding the money back (refund path).
    Refunded,
    /// Terminated holding χ (Alice) — proof that Bob has been paid.
    GotReceipt,
    /// Terminated reimbursed upstream after forwarding χ (Chloe).
    Reimbursed,
    /// Terminated having been paid (Bob).
    Paid,
    /// Refused to participate (bad promise / mismatched parameters).
    Refused,
}

/// Alice — customer `c_0`.
#[derive(Debug, Clone)]
pub struct AliceProcess {
    escrow: Pid,
    escrow_key: KeyId,
    bob_key: KeyId,
    pki: Arc<Pki>,
    payment: PaymentId,
    asset: Asset,
    /// The `d_0` she expects `e_0` to promise.
    expected_d: anta::time::SimDuration,
    sent_money: bool,
    sent_money_at: Option<SimTime>,
    outcome: CustomerOutcome,
    receipt: Option<Receipt>,
}

impl AliceProcess {
    /// Builds Alice.
    pub fn new(
        escrow: Pid,
        escrow_key: KeyId,
        bob_key: KeyId,
        pki: Arc<Pki>,
        payment: PaymentId,
        asset: Asset,
        expected_d: anta::time::SimDuration,
    ) -> Self {
        AliceProcess {
            escrow,
            escrow_key,
            bob_key,
            pki,
            payment,
            asset,
            expected_d,
            sent_money: false,
            sent_money_at: None,
            outcome: CustomerOutcome::Pending,
            receipt: None,
        }
    }

    /// Final outcome.
    pub fn outcome(&self) -> CustomerOutcome {
        self.outcome
    }

    /// The receipt χ, if she obtained it.
    pub fn receipt(&self) -> Option<&Receipt> {
        self.receipt.as_ref()
    }

    /// Local time at which she sent the money (start of her T-bound clock).
    pub fn sent_money_at(&self) -> Option<SimTime> {
        self.sent_money_at
    }

    /// Whether she parted with her money at all.
    pub fn sent_money(&self) -> bool {
        self.sent_money
    }
}

impl Process<PMsg> for AliceProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        if from != self.escrow || self.outcome != CustomerOutcome::Pending {
            return;
        }
        match msg {
            PMsg::Promise(p) if !self.sent_money => {
                if p.kind != PromiseKind::Guarantee
                    || p.payment != self.payment
                    || !p.verify(&self.pki, self.escrow_key)
                {
                    return;
                }
                if p.bound != self.expected_d {
                    // Off-schedule promise: refuse (never send money).
                    self.outcome = CustomerOutcome::Refused;
                    ctx.mark("alice_refused", 0);
                    ctx.halt();
                    return;
                }
                self.sent_money = true;
                self.sent_money_at = Some(ctx.now());
                ctx.send(
                    self.escrow,
                    PMsg::Money {
                        payment: self.payment,
                        asset: self.asset,
                    },
                );
                ctx.mark("alice_paid_out", self.asset.amount as i64);
            }
            PMsg::Money { payment, asset } if self.sent_money => {
                if payment != self.payment || asset != self.asset {
                    return;
                }
                self.outcome = CustomerOutcome::Refunded;
                ctx.mark("alice_refunded", asset.amount as i64);
                ctx.halt();
            }
            PMsg::Receipt(chi) if self.sent_money => {
                if chi.payment != self.payment || !chi.verify(&self.pki, self.bob_key) {
                    return;
                }
                self.receipt = Some(chi);
                self.outcome = CustomerOutcome::GotReceipt;
                ctx.mark("alice_got_receipt", 0);
                ctx.halt();
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }

    /// Mutable state only — the wiring (pids, keys, bounds) is per-run
    /// constant. `sent_money_at` is excluded entirely: her future behaviour
    /// never reads it (it exists for the post-run `T`-clause check, which
    /// the timeout calculus guarantees uniformly across schedules — the
    /// time-robust checker contract on `Engine::enable_fingerprints`).
    fn fp_digest(&self) -> u64 {
        anta::fingerprint::debug_digest(&(
            self.sent_money,
            self.sent_money_at.is_some(),
            self.outcome,
            &self.receipt,
        ))
    }
}

/// Chloe_i — connector `c_i` (`0 < i < n`).
#[derive(Debug, Clone)]
pub struct ChloeProcess {
    index: usize,
    up_escrow: Pid,
    down_escrow: Pid,
    up_escrow_key: KeyId,
    down_escrow_key: KeyId,
    bob_key: KeyId,
    pki: Arc<Pki>,
    payment: PaymentId,
    /// What she must send downstream (to `e_i`).
    send_asset: Asset,
    /// What she is owed upstream (at `e_{i-1}`), ≥ `send_asset` by her
    /// commission.
    recv_asset: Asset,
    expected_d: anta::time::SimDuration,
    expected_a_up: anta::time::SimDuration,
    got_g: bool,
    got_p: bool,
    sent_money: bool,
    forwarded_chi: bool,
    outcome: CustomerOutcome,
}

impl ChloeProcess {
    /// Builds Chloe_i.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        up_escrow: Pid,
        down_escrow: Pid,
        up_escrow_key: KeyId,
        down_escrow_key: KeyId,
        bob_key: KeyId,
        pki: Arc<Pki>,
        payment: PaymentId,
        send_asset: Asset,
        recv_asset: Asset,
        expected_d: anta::time::SimDuration,
        expected_a_up: anta::time::SimDuration,
    ) -> Self {
        ChloeProcess {
            index,
            up_escrow,
            down_escrow,
            up_escrow_key,
            down_escrow_key,
            bob_key,
            pki,
            payment,
            send_asset,
            recv_asset,
            expected_d,
            expected_a_up,
            got_g: false,
            got_p: false,
            sent_money: false,
            forwarded_chi: false,
            outcome: CustomerOutcome::Pending,
        }
    }

    /// Final outcome.
    pub fn outcome(&self) -> CustomerOutcome {
        self.outcome
    }

    /// Whether she parted with her money.
    pub fn sent_money(&self) -> bool {
        self.sent_money
    }

    /// Chain index.
    pub fn index(&self) -> usize {
        self.index
    }

    fn maybe_send_money(&mut self, ctx: &mut Ctx<PMsg>) {
        if self.got_g && self.got_p && !self.sent_money {
            self.sent_money = true;
            ctx.send(
                self.down_escrow,
                PMsg::Money {
                    payment: self.payment,
                    asset: self.send_asset,
                },
            );
            ctx.mark("chloe_paid_out", self.index as i64);
        }
    }
}

impl Process<PMsg> for ChloeProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        if self.outcome != CustomerOutcome::Pending && self.outcome != CustomerOutcome::Refused {
            return;
        }
        match msg {
            PMsg::Promise(p) => {
                match p.kind {
                    PromiseKind::Guarantee if from == self.down_escrow && !self.got_g => {
                        if p.payment != self.payment || !p.verify(&self.pki, self.down_escrow_key) {
                            return;
                        }
                        if p.bound != self.expected_d {
                            self.outcome = CustomerOutcome::Refused;
                            ctx.mark("chloe_refused", self.index as i64);
                            ctx.halt();
                            return;
                        }
                        self.got_g = true;
                    }
                    PromiseKind::Promise if from == self.up_escrow && !self.got_p => {
                        if p.payment != self.payment || !p.verify(&self.pki, self.up_escrow_key) {
                            return;
                        }
                        if p.bound != self.expected_a_up {
                            self.outcome = CustomerOutcome::Refused;
                            ctx.mark("chloe_refused", self.index as i64);
                            ctx.halt();
                            return;
                        }
                        self.got_p = true;
                    }
                    _ => return,
                }
                self.maybe_send_money(ctx);
            }
            PMsg::Money { payment, asset } => {
                if payment != self.payment {
                    return;
                }
                if from == self.down_escrow && self.sent_money && !self.forwarded_chi {
                    // Refund from her own escrow: her work is done.
                    if asset != self.send_asset {
                        return;
                    }
                    self.outcome = CustomerOutcome::Refunded;
                    ctx.mark("chloe_refunded", self.index as i64);
                    ctx.halt();
                } else if from == self.up_escrow && self.forwarded_chi {
                    // Reimbursement (with commission) from upstream.
                    if asset != self.recv_asset {
                        return;
                    }
                    self.outcome = CustomerOutcome::Reimbursed;
                    ctx.mark("chloe_reimbursed", self.index as i64);
                    ctx.halt();
                }
            }
            PMsg::Receipt(chi) => {
                if from != self.down_escrow || !self.sent_money || self.forwarded_chi {
                    return;
                }
                if chi.payment != self.payment || !chi.verify(&self.pki, self.bob_key) {
                    return;
                }
                // Forward χ upstream and await the money from e_{i-1}.
                self.forwarded_chi = true;
                ctx.send(self.up_escrow, PMsg::Receipt(chi));
                ctx.mark("chloe_forwarded_chi", self.index as i64);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

/// Bob — customer `c_n`.
#[derive(Debug, Clone)]
pub struct BobProcess {
    escrow: Pid,
    escrow_key: KeyId,
    signer: Signer,
    pki: Arc<Pki>,
    payment: PaymentId,
    asset: Asset,
    expected_a: anta::time::SimDuration,
    issued_chi: bool,
    outcome: CustomerOutcome,
}

impl BobProcess {
    /// Builds Bob.
    pub fn new(
        escrow: Pid,
        escrow_key: KeyId,
        signer: Signer,
        pki: Arc<Pki>,
        payment: PaymentId,
        asset: Asset,
        expected_a: anta::time::SimDuration,
    ) -> Self {
        BobProcess {
            escrow,
            escrow_key,
            signer,
            pki,
            payment,
            asset,
            expected_a,
            issued_chi: false,
            outcome: CustomerOutcome::Pending,
        }
    }

    /// Final outcome.
    pub fn outcome(&self) -> CustomerOutcome {
        self.outcome
    }

    /// Whether Bob signed and sent χ.
    pub fn issued_chi(&self) -> bool {
        self.issued_chi
    }
}

impl Process<PMsg> for BobProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        if from != self.escrow || self.outcome != CustomerOutcome::Pending {
            return;
        }
        match msg {
            PMsg::Promise(p) if !self.issued_chi => {
                if p.kind != PromiseKind::Promise
                    || p.payment != self.payment
                    || !p.verify(&self.pki, self.escrow_key)
                {
                    return;
                }
                if p.bound != self.expected_a {
                    self.outcome = CustomerOutcome::Refused;
                    ctx.mark("bob_refused", 0);
                    ctx.halt();
                    return;
                }
                // Issue χ: Bob's signed statement that Alice's obligation
                // is met (it will be, by the escrow chain, once χ lands).
                let chi = Receipt::issue(&self.signer, self.payment);
                self.issued_chi = true;
                ctx.send(self.escrow, PMsg::Receipt(chi));
                ctx.mark("bob_issued_chi", 0);
            }
            PMsg::Money { payment, asset } if self.issued_chi => {
                if payment != self.payment || asset != self.asset {
                    return;
                }
                self.outcome = CustomerOutcome::Paid;
                ctx.mark("bob_paid", asset.amount as i64);
                ctx.halt();
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}
