//! The time-bounded cross-chain payment protocol (Theorem 1, Figure 2).
//!
//! Two faithful implementations of the same protocol:
//!
//! * [`escrow`] / [`customers`] — the executable processes, with real
//!   ledgers, signature checking and promise validation;
//! * [`fig2`] — the declarative ANTA automata exactly as drawn in
//!   Figure 2, used for diagram regeneration and cross-checking;
//!
//! plus [`scenario`] — engine assembly, clock plans and outcome extraction.

pub mod customers;
pub mod escrow;
pub mod fig2;
pub mod scenario;

pub use customers::{AliceProcess, BobProcess, ChloeProcess, CustomerOutcome};
pub use escrow::{EscrowProcess, EscrowState};
pub use scenario::{ChainOutcome, ChainSetup, ClockPlan, CustomerView};
