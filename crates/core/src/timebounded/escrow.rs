//! Escrow `e_i` of the time-bounded protocol — the executable counterpart
//! of Figure 2's escrow automaton, with the real ledger attached.
//!
//! The paper's description (§4): *"An escrow e_i first sends promise G(d_i)
//! to its (upstream) customer c_i. … Then it awaits receipt of the
//! money/value from customer c_i. If the money does arrive, the escrow
//! issues promise P(a_i) to its downstream customer c_{i+1}. It remembers
//! the time this promise was issued as u. Then it awaits receipt of the
//! certificate χ from customer c_{i+1}. If χ does not arrive by time
//! u + a_i, a time-out occurs, and the escrow refunds the money to customer
//! c_i. If it does arrive in time, the escrow reacts by forwarding the
//! certificate to customer c_i, and forwarding the money to customer
//! c_{i+1}."*
//!
//! The control structure is mirrored one-for-one by the declarative
//! automaton in [`super::fig2`]; the integration tests cross-check the two.

use crate::msg::{PMsg, PromiseKind, SignedPromise};
use anta::process::{Ctx, Pid, Process, TimerId};
use anta::time::SimTime;
use ledger::{Asset, DealId, Ledger};
use std::sync::Arc;
use xcrypto::{KeyId, PaymentId, Pki, Signer};

use crate::timing::TimeoutSchedule;

/// Escrow control states (Figure 2's white states; the grey states are
/// transient within a single handler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscrowState {
    /// Waiting for $ from the upstream customer (after sending `G(d_i)`).
    AwaitMoney,
    /// Waiting for χ from the downstream customer (after sending `P(a_i)`),
    /// racing the timeout `now ≥ u + a_i`.
    AwaitChi,
    /// χ arrived in time: certificate forwarded upstream, money released
    /// downstream.
    Paid,
    /// Timed out: money refunded upstream.
    Refunded,
}

const TIMER_CHI: TimerId = 1;

/// The executable escrow.
#[derive(Debug, Clone)]
pub struct EscrowProcess {
    /// Chain index `i` of this escrow `e_i`.
    index: usize,
    /// Engine pid of upstream customer `c_i`.
    up: Pid,
    /// Engine pid of downstream customer `c_{i+1}`.
    down: Pid,
    /// Account keys of the two customers.
    up_key: KeyId,
    down_key: KeyId,
    bob_key: KeyId,
    signer: Signer,
    pki: Arc<Pki>,
    payment: PaymentId,
    /// The value this hop carries.
    asset: Asset,
    /// Promise bounds from the timeout calculus.
    a_i: anta::time::SimDuration,
    d_i: anta::time::SimDuration,
    /// The escrow's book (funded with the upstream customer's capital).
    ledger: Ledger,
    state: EscrowState,
    deal: Option<DealId>,
    /// `u := now` — local issuance time of `P(a_i)`.
    u: Option<SimTime>,
}

impl EscrowProcess {
    /// Builds escrow `e_i`. `ledger` must already hold accounts for both
    /// customers, with the upstream customer funded to cover `asset`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        up: Pid,
        down: Pid,
        up_key: KeyId,
        down_key: KeyId,
        bob_key: KeyId,
        signer: Signer,
        pki: Arc<Pki>,
        payment: PaymentId,
        asset: Asset,
        schedule: &TimeoutSchedule,
        ledger: Ledger,
    ) -> Self {
        EscrowProcess {
            index,
            up,
            down,
            up_key,
            down_key,
            bob_key,
            signer,
            pki,
            payment,
            asset,
            a_i: schedule.a[index],
            d_i: schedule.d[index],
            ledger,
            state: EscrowState::AwaitMoney,
            deal: None,
            u: None,
        }
    }

    /// Current control state.
    pub fn state(&self) -> EscrowState {
        self.state
    }

    /// The escrow's book (for conservation audits and balance assertions).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Chain index of this escrow.
    pub fn index(&self) -> usize {
        self.index
    }

    fn resolve_paid(&mut self, chi: xcrypto::Receipt, ctx: &mut Ctx<PMsg>) {
        // Grey-state chain of Figure 2: s(c_i, χ) then s(c_{i+1}, $).
        ctx.send(self.up, PMsg::Receipt(chi));
        let deal = self.deal.expect("AwaitChi implies a locked deal");
        self.ledger
            .release(deal)
            .expect("locked deal releases exactly once");
        ctx.send(
            self.down,
            PMsg::Money {
                payment: self.payment,
                asset: self.asset,
            },
        );
        self.state = EscrowState::Paid;
        ctx.mark("escrow_released", self.index as i64);
        ctx.halt();
    }

    fn resolve_refund(&mut self, ctx: &mut Ctx<PMsg>) {
        let deal = self.deal.expect("AwaitChi implies a locked deal");
        self.ledger
            .refund(deal)
            .expect("locked deal refunds exactly once");
        ctx.send(
            self.up,
            PMsg::Money {
                payment: self.payment,
                asset: self.asset,
            },
        );
        self.state = EscrowState::Refunded;
        ctx.mark("escrow_refunded", self.index as i64);
        ctx.halt();
    }
}

impl Process<PMsg> for EscrowProcess {
    fn on_start(&mut self, ctx: &mut Ctx<PMsg>) {
        // Grey state: issue G(d_i) to the upstream customer.
        let g = SignedPromise::issue(
            &self.signer,
            PromiseKind::Guarantee,
            self.payment,
            self.index,
            self.d_i,
        );
        ctx.send(self.up, PMsg::Promise(g));
        ctx.mark("escrow_sent_g", self.index as i64);
    }

    fn on_message(&mut self, from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        match (self.state, msg) {
            (EscrowState::AwaitMoney, PMsg::Money { payment, asset }) => {
                if from != self.up || payment != self.payment || asset != self.asset {
                    return; // wrong party or wrong deal: an abiding escrow ignores it
                }
                // Lock the value. A customer without cover is not abiding;
                // the escrow simply does not proceed (and owes nothing).
                match self.ledger.lock(self.up_key, self.down_key, asset) {
                    Ok(deal) => {
                        self.deal = Some(deal);
                        ctx.mark("escrow_locked", self.index as i64);
                    }
                    Err(_) => {
                        ctx.mark("escrow_lock_rejected", self.index as i64);
                        return;
                    }
                }
                // Grey state: issue P(a_i) downstream; u := now.
                let u = ctx.now();
                self.u = Some(u);
                let p = SignedPromise::issue(
                    &self.signer,
                    PromiseKind::Promise,
                    self.payment,
                    self.index,
                    self.a_i,
                );
                ctx.send(self.down, PMsg::Promise(p));
                ctx.mark("escrow_sent_p", self.index as i64);
                // Arm the time-out `now ≥ u + a_i`.
                ctx.set_timer_at(TIMER_CHI, u + self.a_i);
                self.state = EscrowState::AwaitChi;
            }
            (EscrowState::AwaitChi, PMsg::Receipt(chi)) => {
                if from != self.down {
                    return;
                }
                // Authenticity: χ must be Bob's signature over this payment.
                if chi.payment != self.payment || !chi.verify(&self.pki, self.bob_key) {
                    ctx.mark("escrow_bad_chi", self.index as i64);
                    return;
                }
                // Timeliness: the P(a) promise covers χ received at local
                // time v < u + a_i only.
                let u = self.u.expect("AwaitChi implies P was issued");
                if ctx.now() >= u + self.a_i {
                    ctx.mark("escrow_late_chi", self.index as i64);
                    return; // the timer will refund
                }
                self.resolve_paid(chi, ctx);
            }
            _ => {} // anything else is out of protocol; an abiding escrow ignores it
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<PMsg>) {
        if id == TIMER_CHI && self.state == EscrowState::AwaitChi {
            self.resolve_refund(ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }

    /// Digests the mutable state only — the wiring (pids, keys, bounds,
    /// payment id) is per-run constant, and `u` goes through
    /// [`Process::fp_times`] so the `now ≥ u + a_i` race fingerprints as a
    /// clock residue rather than an absolute instant.
    fn fp_digest(&self) -> u64 {
        anta::fingerprint::debug_digest(&(&self.ledger, self.state, self.deal, self.u.is_some()))
    }

    /// `u` is future-relevant only while the `now ≥ u + a_i` race is live;
    /// once resolved it is a past time, abstracted out of the fingerprint.
    fn fp_times(&self, out: &mut Vec<SimTime>) {
        if self.state == EscrowState::AwaitChi {
            out.extend(self.u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::SyncParams;
    use anta::clock::DriftClock;
    use anta::engine::{Engine, EngineConfig};
    use anta::net::SyncNet;
    use anta::oracle::RandomOracle;
    use anta::process::InertProcess;
    use anta::time::SimDuration;
    use ledger::CurrencyId;
    use xcrypto::Receipt;

    /// Harness: escrow at pid 2, scripted customers at pids 0 (up) and
    /// 1 (down).
    struct Rig {
        pki: Arc<Pki>,
        escrow_signer: Signer,
        up_signer: Signer,
        down_signer: Signer,
        payment: PaymentId,
        asset: Asset,
        schedule: TimeoutSchedule,
    }

    fn rig() -> Rig {
        let mut pki = Pki::new(11);
        let (_, up_signer) = pki.register();
        let (_, down_signer) = pki.register();
        let (_, escrow_signer) = pki.register();
        let payment = PaymentId::derive(3, &[up_signer.id(), down_signer.id()]);
        Rig {
            pki: Arc::new(pki),
            escrow_signer,
            up_signer,
            down_signer,
            payment,
            asset: Asset::new(CurrencyId(0), 50),
            schedule: TimeoutSchedule::derive(1, &SyncParams::baseline()),
        }
    }

    fn escrow_of(r: &Rig) -> EscrowProcess {
        let mut book = Ledger::new();
        book.open_account(r.up_signer.id()).unwrap();
        book.open_account(r.down_signer.id()).unwrap();
        book.mint(r.up_signer.id(), r.asset).unwrap();
        EscrowProcess::new(
            0,
            0,
            1,
            r.up_signer.id(),
            r.down_signer.id(),
            r.down_signer.id(), // downstream customer doubles as Bob here
            r.escrow_signer.clone(),
            r.pki.clone(),
            r.payment,
            r.asset,
            &r.schedule,
            book,
        )
    }

    /// A scripted customer that sends a canned sequence of messages at
    /// fixed local times and records everything it receives.
    #[derive(Debug, Clone)]
    struct Script {
        sends: Vec<(u64 /*local µs*/, Pid, PMsg)>,
        received: Vec<PMsg>,
    }

    impl Script {
        fn new(sends: Vec<(u64, Pid, PMsg)>) -> Self {
            Script {
                sends,
                received: Vec::new(),
            }
        }
    }

    impl Process<PMsg> for Script {
        fn on_start(&mut self, ctx: &mut Ctx<PMsg>) {
            for (i, (at, _, _)) in self.sends.iter().enumerate() {
                ctx.set_timer_at(i as u64, SimTime::from_ticks(*at));
            }
        }
        fn on_message(&mut self, _f: Pid, m: PMsg, _c: &mut Ctx<PMsg>) {
            self.received.push(m);
        }
        fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<PMsg>) {
            let (_, to, msg) = self.sends[id as usize].clone();
            ctx.send(to, msg);
        }
        anta::impl_process_boilerplate!(PMsg);
    }

    fn run(r: &Rig, up: Script, down: Script) -> Engine<PMsg> {
        let mut eng = Engine::new(
            Box::new(SyncNet::worst_case(SimDuration::from_millis(1))),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        eng.add_process(Box::new(up), DriftClock::perfect());
        eng.add_process(Box::new(down), DriftClock::perfect());
        eng.add_process(Box::new(escrow_of(r)), DriftClock::perfect());
        eng.run_until(SimTime::from_secs(600));
        eng
    }

    #[test]
    fn happy_path_releases_downstream() {
        let r = rig();
        let chi = Receipt::issue(&r.down_signer, r.payment);
        let up = Script::new(vec![(
            5_000,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: r.asset,
            },
        )]);
        // Down replies with χ shortly after the P promise would arrive.
        let down = Script::new(vec![(10_000, 2, PMsg::Receipt(chi))]);
        let eng = run(&r, up, down);
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::Paid);
        assert_eq!(e.ledger().balance(r.down_signer.id(), CurrencyId(0)), 50);
        assert_eq!(e.ledger().balance(r.up_signer.id(), CurrencyId(0)), 0);
        e.ledger().check_conservation().unwrap();
        // χ was forwarded upstream.
        let up_proc = eng.process_as::<Script>(0).unwrap();
        assert!(up_proc
            .received
            .iter()
            .any(|m| matches!(m, PMsg::Receipt(_))));
    }

    #[test]
    fn timeout_refunds_upstream() {
        let r = rig();
        let up = Script::new(vec![(
            5_000,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: r.asset,
            },
        )]);
        let down = Script::new(vec![]); // never sends χ
        let eng = run(&r, up, down);
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::Refunded);
        assert_eq!(e.ledger().balance(r.up_signer.id(), CurrencyId(0)), 50);
        e.ledger().check_conservation().unwrap();
        // Refund notification went up.
        let up_proc = eng.process_as::<Script>(0).unwrap();
        assert!(up_proc
            .received
            .iter()
            .any(|m| matches!(m, PMsg::Money { .. })));
    }

    #[test]
    fn late_chi_is_refused() {
        let r = rig();
        let chi = Receipt::issue(&r.down_signer, r.payment);
        let a0 = r.schedule.a[0].ticks();
        let up = Script::new(vec![(
            0,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: r.asset,
            },
        )]);
        // χ sent well after u + a_0.
        let down = Script::new(vec![(a0 + 50_000, 2, PMsg::Receipt(chi))]);
        let eng = run(&r, up, down);
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::Refunded, "late χ must not pay out");
        assert_eq!(e.ledger().balance(r.up_signer.id(), CurrencyId(0)), 50);
    }

    #[test]
    fn forged_chi_rejected() {
        let r = rig();
        // χ signed by the WRONG key (the upstream customer, not Bob).
        let forged = Receipt::issue(&r.up_signer, r.payment);
        let up = Script::new(vec![(
            0,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: r.asset,
            },
        )]);
        let down = Script::new(vec![(5_000, 2, PMsg::Receipt(forged))]);
        let eng = run(&r, up, down);
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::Refunded);
        assert!(eng.trace().marks("escrow_bad_chi").count() == 1);
    }

    #[test]
    fn wrong_payment_chi_rejected() {
        let r = rig();
        let other_payment = PaymentId::derive(999, &[r.up_signer.id()]);
        let chi = Receipt::issue(&r.down_signer, other_payment);
        let up = Script::new(vec![(
            0,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: r.asset,
            },
        )]);
        let down = Script::new(vec![(5_000, 2, PMsg::Receipt(chi))]);
        let eng = run(&r, up, down);
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::Refunded);
    }

    #[test]
    fn money_from_wrong_party_ignored() {
        let r = rig();
        let up = Script::new(vec![]);
        // The DOWNSTREAM party tries to inject money.
        let down = Script::new(vec![(
            0,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: r.asset,
            },
        )]);
        let eng = run(&r, up, down);
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::AwaitMoney, "still waiting");
        assert_eq!(e.deal, None);
    }

    #[test]
    fn wrong_amount_ignored() {
        let r = rig();
        let up = Script::new(vec![(
            0,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: Asset::new(CurrencyId(0), 49),
            },
        )]);
        let down = Script::new(vec![]);
        let eng = run(&r, up, down);
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::AwaitMoney);
    }

    #[test]
    fn unfunded_customer_cannot_lock() {
        let r = rig();
        // Build an escrow whose book has no funds for the upstream party.
        let mut book = Ledger::new();
        book.open_account(r.up_signer.id()).unwrap();
        book.open_account(r.down_signer.id()).unwrap();
        let escrow = EscrowProcess::new(
            0,
            0,
            1,
            r.up_signer.id(),
            r.down_signer.id(),
            r.down_signer.id(),
            r.escrow_signer.clone(),
            r.pki.clone(),
            r.payment,
            r.asset,
            &r.schedule,
            book,
        );
        let mut eng = Engine::new(
            Box::new(SyncNet::worst_case(SimDuration::from_millis(1))),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let up = Script::new(vec![(
            0,
            2,
            PMsg::Money {
                payment: r.payment,
                asset: r.asset,
            },
        )]);
        eng.add_process(Box::new(up), DriftClock::perfect());
        eng.add_process(Box::new(InertProcess), DriftClock::perfect());
        eng.add_process(Box::new(escrow), DriftClock::perfect());
        eng.run();
        let e = eng.process_as::<EscrowProcess>(2).unwrap();
        assert_eq!(e.state(), EscrowState::AwaitMoney);
        assert_eq!(eng.trace().marks("escrow_lock_rejected").count(), 1);
        e.ledger().check_conservation().unwrap();
    }
}
