//! Executable witnesses for Theorem 2.
//!
//! *"If communications are partially synchronous, there is no eventually
//! terminating cross-chain payment protocol."* Code cannot re-prove a
//! universally quantified impossibility, but it can mechanise the proof's
//! argument and exhibit it on every concrete candidate in this repository:
//!
//! 1. **Deadline-based candidates** (the Theorem 1 protocol, for *any*
//!    finite timeout schedule): a partially synchronous adversary delays χ
//!    past the deadline. The escrow refunds while the certificate is in
//!    flight — violating CS2 (Bob issued χ, never paid) or CS3 (a
//!    connector paid downstream, never reimbursed).
//! 2. **Infinitely patient candidates** (timeouts stripped): against a
//!    crashed Bob, the money stays escrowed and Alice never terminates —
//!    violating T.
//! 3. **The indistinguishability argument** that forces this dilemma: the
//!    escrow `e_{n-1}`'s observations in run A ("Bob crashed, χ will never
//!    come") and run B ("χ merely delayed") are *identical* up to its
//!    deadline, so any protocol must react identically — refunding breaks
//!    safety in B, waiting breaks termination in A. The
//!    [`indistinguishability_pair`] function executes both runs and checks
//!    the prefix equality and the conflicting obligations machine-side.

use crate::msg::PMsg;
use crate::timebounded::{ChainOutcome, ChainSetup, ClockPlan, CustomerOutcome};
use crate::timing::{SyncParams, TimeoutSchedule};
use crate::topology::{Role, ValuePlan};
use anta::net::{AdversarialNet, EnvelopeMeta, SyncNet};
use anta::oracle::FixedOracle;
use anta::process::InertProcess;
use anta::time::{SimDuration, SimTime};
use anta::trace::TraceKind;

/// A demonstrated violation on one candidate protocol.
#[derive(Debug, Clone)]
pub struct WitnessReport {
    /// Which candidate was attacked.
    pub candidate: &'static str,
    /// Which Definition 1 property broke.
    pub violated: &'static str,
    /// Human-readable account of the run.
    pub description: String,
}

/// Witness 1a: the time-bounded protocol under a partially synchronous
/// adversary that delays Bob's χ beyond `a_{n-1}` — CS2 falls.
pub fn cs2_violation_under_partial_synchrony(n: usize, value: u64) -> WitnessReport {
    let setup = ChainSetup::new(n, ValuePlan::uniform(n, value), SyncParams::baseline(), 77);
    let delta = setup.params.delta;
    let bob_pid = setup.topo.customer_pid(n);
    let escrow_pid = setup.topo.escrow_pid(n - 1);
    // Delay only Bob→e_{n-1} χ traffic by more than the whole schedule —
    // legal before GST in a partially synchronous network.
    let extra = setup.schedule.d[0] * 4;
    let net = AdversarialNet::delaying(delta, extra, move |m: &EnvelopeMeta, msg: &PMsg| {
        m.from == bob_pid && m.to == escrow_pid && matches!(msg, PMsg::Receipt(_))
    });
    let mut eng = setup.build_engine(
        Box::new(net),
        Box::new(FixedOracle::maximal()),
        ClockPlan::Perfect,
    );
    let report = eng.run();
    let outcome = ChainOutcome::extract(&eng, &setup, report.quiescent);
    let issued = outcome.bob_issued_chi == Some(true);
    let paid = outcome.bob_paid();
    assert!(
        issued && !paid,
        "witness failed to materialise: {outcome:?}"
    );
    WitnessReport {
        candidate: "time-bounded protocol (any finite schedule)",
        violated: "CS2",
        description: format!(
            "n = {n}: adversary held χ for {extra} (> a_{} = {}); e_{} timed out and \
             refunded; Bob issued χ yet was never paid",
            n - 1,
            setup.schedule.a[n - 1],
            n - 1
        ),
    }
}

/// Witness 1b: delaying a *connector's* forwarded χ instead — CS3 falls
/// (the connector paid downstream but the upstream escrow refunds Alice).
/// Requires `n ≥ 2`.
pub fn cs3_violation_under_partial_synchrony(n: usize, value: u64) -> WitnessReport {
    assert!(n >= 2, "needs a connector");
    let setup = ChainSetup::new(n, ValuePlan::uniform(n, value), SyncParams::baseline(), 78);
    let delta = setup.params.delta;
    let chloe_pid = setup.topo.customer_pid(n - 1);
    let up_escrow_pid = setup.topo.escrow_pid(n - 2);
    let extra = setup.schedule.d[0] * 4;
    let net = AdversarialNet::delaying(delta, extra, move |m: &EnvelopeMeta, msg: &PMsg| {
        m.from == chloe_pid && m.to == up_escrow_pid && matches!(msg, PMsg::Receipt(_))
    });
    let mut eng = setup.build_engine(
        Box::new(net),
        Box::new(FixedOracle::maximal()),
        ClockPlan::Perfect,
    );
    let report = eng.run();
    let outcome = ChainOutcome::extract(&eng, &setup, report.quiescent);
    let view = outcome.customers[n - 1].expect("compliant Chloe");
    let net_pos = outcome.net_positions[n - 1].expect("known position");
    assert!(
        view.sent_money && net_pos < 0,
        "witness failed to materialise: {outcome:?}"
    );
    WitnessReport {
        candidate: "time-bounded protocol (any finite schedule)",
        violated: "CS3",
        description: format!(
            "n = {n}: Chloe{} paid {value} downstream (χ accepted at e_{}), but her \
             forwarded χ was delayed past e_{}'s deadline; she terminated {net_pos} \
             out of pocket",
            n - 1,
            n - 1,
            n - 2
        ),
    }
}

/// Witness 2: strip the timeouts (an "eventually terminating" candidate
/// that never gives up) and crash Bob — termination falls.
pub fn no_timeout_never_terminates(n: usize, value: u64) -> WitnessReport {
    let params = SyncParams::baseline();
    // A schedule with absurdly long deadlines models the protocol variant
    // that "waits forever" (within any finite horizon we run).
    let forever = TimeoutSchedule {
        a: vec![SimDuration::from_secs(10_000_000); n],
        d: vec![SimDuration::from_secs(10_000_001); n],
        epsilon: SimDuration::from_secs(1),
        alice_bound: SimDuration::from_secs(10_000_002),
    };
    let setup = ChainSetup::new(n, ValuePlan::uniform(n, value), params, 79).with_schedule(forever);
    let mut eng = setup.build_engine_with(
        Box::new(SyncNet::worst_case(setup.params.delta)),
        Box::new(FixedOracle::maximal()),
        ClockPlan::Perfect,
        |role| (role == Role::Bob).then(|| Box::new(InertProcess) as Box<_>),
    );
    // Even a generous horizon (an hour of simulated time) sees no
    // progress: the money is escrowed, Alice unresolved.
    let _ = eng.run_until(SimTime::from_secs(3_600));
    let outcome = ChainOutcome::extract(&eng, &setup, false);
    let alice = outcome.customers[0].expect("compliant Alice");
    assert!(
        alice.sent_money && alice.halted_at.is_none(),
        "witness failed to materialise: {outcome:?}"
    );
    WitnessReport {
        candidate: "timeout-free variant (infinite patience)",
        violated: "T",
        description: format!(
            "n = {n}: Bob crashed after the money was escrowed; with no timeout the \
             escrows hold the value forever and Alice never terminates"
        ),
    }
}

/// The executable indistinguishability pair behind Theorem 2.
#[derive(Debug, Clone)]
pub struct IndistinguishabilityWitness {
    /// Deliveries observed by `e_{n-1}` up to its deadline — identical in
    /// both runs.
    pub shared_prefix: Vec<String>,
    /// In run A (Bob crashed) the refund was correct.
    pub run_a_refund_correct: bool,
    /// In run B (χ delayed by the network) the same refund violates CS2.
    pub run_b_cs2_violated: bool,
}

/// Runs the two indistinguishable executions and checks the dilemma.
pub fn indistinguishability_pair(n: usize, value: u64) -> IndistinguishabilityWitness {
    let make_setup =
        || ChainSetup::new(n, ValuePlan::uniform(n, value), SyncParams::baseline(), 80);
    let setup_a = make_setup();
    let setup_b = make_setup();
    let bob_pid = setup_a.topo.customer_pid(n);
    let escrow_pid = setup_a.topo.escrow_pid(n - 1);
    let delta = setup_a.params.delta;

    // Run A: Bob has crashed. Fully synchronous network.
    let mut eng_a = setup_a.build_engine_with(
        Box::new(SyncNet::worst_case(delta)),
        Box::new(FixedOracle::maximal()),
        ClockPlan::Perfect,
        |role| (role == Role::Bob).then(|| Box::new(InertProcess) as Box<_>),
    );
    let report_a = eng_a.run();

    // Run B: Bob abides; the (partially synchronous) network delays his χ
    // beyond the deadline.
    let extra = setup_b.schedule.d[0] * 4;
    let net_b = AdversarialNet::delaying(delta, extra, move |m: &EnvelopeMeta, msg: &PMsg| {
        m.from == bob_pid && m.to == escrow_pid && matches!(msg, PMsg::Receipt(_))
    });
    let mut eng_b = setup_b.build_engine(
        Box::new(net_b),
        Box::new(FixedOracle::maximal()),
        ClockPlan::Perfect,
    );
    let report_b = eng_b.run();

    // The deliveries e_{n-1} saw before its timeout fired, as
    // (sender, message-kind) pairs.
    let deadline_of = |eng: &anta::engine::Engine<PMsg>| {
        eng.trace()
            .events
            .iter()
            .find_map(|e| match e.kind {
                TraceKind::TimerFired { pid, .. } if pid == escrow_pid => Some(e.real),
                _ => None,
            })
            .expect("escrow timeout fired")
    };
    let prefix_of = |eng: &anta::engine::Engine<PMsg>, until: SimTime| {
        eng.trace()
            .events
            .iter()
            .filter(|e| e.real <= until)
            .filter_map(|e| match &e.kind {
                TraceKind::Delivered { from, to, msg } if *to == escrow_pid => {
                    Some(format!("r({from}, {})", msg.kind()))
                }
                _ => None,
            })
            .collect::<Vec<String>>()
    };
    let t_a = deadline_of(&eng_a);
    let t_b = deadline_of(&eng_b);
    let prefix_a = prefix_of(&eng_a, t_a);
    let prefix_b = prefix_of(&eng_b, t_b);
    assert_eq!(
        prefix_a,
        prefix_b,
        "the two runs must be indistinguishable at e_{} up to its deadline",
        n - 1
    );

    let outcome_a = ChainOutcome::extract(&eng_a, &setup_a, report_a.quiescent);
    let outcome_b = ChainOutcome::extract(&eng_b, &setup_b, report_b.quiescent);
    // Run A: refund is the right call — every compliant customer whole.
    let a_ok = outcome_a.customers[0]
        .map(|v| v.outcome == CustomerOutcome::Refunded)
        .unwrap_or(false)
        && outcome_a.net_positions[0] == Some(0);
    // Run B: the same refund strands compliant Bob — χ issued, no money.
    let b_violated = outcome_b.bob_issued_chi == Some(true) && !outcome_b.bob_paid();
    IndistinguishabilityWitness {
        shared_prefix: prefix_a,
        run_a_refund_correct: a_ok,
        run_b_cs2_violated: b_violated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs2_witness_materialises() {
        for n in [1usize, 2, 4] {
            let w = cs2_violation_under_partial_synchrony(n, 100);
            assert_eq!(w.violated, "CS2");
            assert!(w.description.contains("refunded"));
        }
    }

    #[test]
    fn cs3_witness_materialises() {
        for n in [2usize, 3, 5] {
            let w = cs3_violation_under_partial_synchrony(n, 100);
            assert_eq!(w.violated, "CS3");
            assert!(w.description.contains("out of pocket"));
        }
    }

    #[test]
    fn no_timeout_witness_materialises() {
        let w = no_timeout_never_terminates(2, 100);
        assert_eq!(w.violated, "T");
    }

    #[test]
    fn indistinguishability_pair_checks_out() {
        for n in [1usize, 3] {
            let w = indistinguishability_pair(n, 100);
            assert!(
                w.run_a_refund_correct,
                "n = {n}: refund must be correct when Bob crashed"
            );
            assert!(
                w.run_b_cs2_violated,
                "n = {n}: the same refund must violate CS2 when χ was merely slow"
            );
            // The prefix contains the money arriving but never χ.
            assert!(w.shared_prefix.iter().any(|s| s.contains("$")));
            assert!(!w.shared_prefix.iter().any(|s| s.contains("chi")));
        }
    }
}
