//! The Figure 1 topology: `n` escrows, `n+1` customers.
//!
//! ```text
//! c0 --- e0 --- c1 --- e1 --- … --- c_{n-1} --- e_{n-1} --- c_n
//! ```
//!
//! Customer `c_0` is Alice, `c_n` is Bob, the `c_i` in between are the
//! connectors ("Chloe_i"). Customers `c_i` and `c_{i+1}` have accounts at
//! escrow `e_i` and trust that escrow; there are no other trust relations,
//! and value moves only between customers of the same escrow.
//!
//! This module fixes the engine pid layout, the key assignments, and the
//! value vector (Alice pays `v_0`, each Chloe forwards `v_i ≤ v_{i-1}`,
//! keeping her commission), and can render the figure for any `n`
//! (experiment E4).

use anta::process::Pid;
use ledger::{Asset, CurrencyId};
use xcrypto::{KeyId, PaymentId, Pki, Signer};

/// A participant role in the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Customer `c_0`.
    Alice,
    /// Connector `c_i`, `0 < i < n`.
    Chloe(usize),
    /// Customer `c_n`.
    Bob,
    /// Escrow `e_i`.
    Escrow(usize),
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Alice => write!(f, "c0 (Alice)"),
            Role::Chloe(i) => write!(f, "c{i} (Chloe{i})"),
            Role::Bob => write!(f, "cn (Bob)"),
            Role::Escrow(i) => write!(f, "e{i}"),
        }
    }
}

/// The chain topology and pid/key layout for one payment instance.
///
/// Engine pid convention: customers `c_0..c_n` occupy pids `0..=n`;
/// escrows `e_0..e_{n-1}` occupy pids `n+1..=2n`. A transaction manager
/// (weak protocol) and notaries, when present, follow after.
#[derive(Debug, Clone)]
pub struct ChainTopology {
    /// Number of escrows (`n ≥ 1`); there are `n+1` customers.
    pub n: usize,
}

impl ChainTopology {
    /// A chain with `n` escrows. Panics if `n = 0` (no payment without an
    /// escrow).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a payment chain needs at least one escrow");
        ChainTopology { n }
    }

    /// Total number of chain participants (`2n + 1`).
    pub fn participants(&self) -> usize {
        2 * self.n + 1
    }

    /// Engine pid of customer `c_i` (`i ≤ n`).
    pub fn customer_pid(&self, i: usize) -> Pid {
        assert!(
            i <= self.n,
            "customer index {i} out of range (n = {})",
            self.n
        );
        i
    }

    /// Engine pid of escrow `e_i` (`i < n`).
    pub fn escrow_pid(&self, i: usize) -> Pid {
        assert!(i < self.n, "escrow index {i} out of range (n = {})", self.n);
        self.n + 1 + i
    }

    /// First free pid after the chain (TM, notaries, observers).
    pub fn next_free_pid(&self) -> Pid {
        2 * self.n + 1
    }

    /// The role of a chain pid.
    pub fn role_of(&self, pid: Pid) -> Option<Role> {
        if pid == 0 {
            Some(Role::Alice)
        } else if pid < self.n {
            Some(Role::Chloe(pid))
        } else if pid == self.n {
            Some(Role::Bob)
        } else if pid <= 2 * self.n {
            Some(Role::Escrow(pid - self.n - 1))
        } else {
            None
        }
    }

    /// Renders Figure 1 for this chain as ASCII.
    pub fn render_figure1(&self) -> String {
        let mut top = String::new();
        for i in 0..=self.n {
            if i > 0 {
                top.push_str(" --- ");
            }
            top.push_str(&format!("c{i}"));
            if i < self.n {
                top.push_str(&format!(" --- e{i}"));
            }
        }
        format!(
            "{top}\n(c0 = Alice, c{} = Bob; c_i trusts e_{{i-1}} and e_i)\n",
            self.n
        )
    }

    /// Renders Figure 1 as Graphviz DOT.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph chain {\n  rankdir=LR;\n");
        for i in 0..=self.n {
            let label = if i == 0 {
                "c0\\nAlice".to_owned()
            } else if i == self.n {
                format!("c{i}\\nBob")
            } else {
                format!("c{i}\\nChloe{i}")
            };
            let _ = writeln!(out, "  c{i} [label=\"{label}\", shape=circle];");
        }
        for i in 0..self.n {
            let _ = writeln!(out, "  e{i} [label=\"e{i}\", shape=box];");
            let _ = writeln!(out, "  c{i} -- e{i};");
            let _ = writeln!(out, "  e{i} -- c{};", i + 1);
        }
        out.push_str("}\n");
        out
    }
}

/// Global identity of an escrow venue in a multi-payment network.
///
/// A single payment's chain names its escrows locally (`e_0 … e_{n-1}`,
/// [`Role::Escrow`]); when many payments share infrastructure — a hub's
/// collateral pool, a payment-channel edge of a routing tree — each local
/// escrow maps onto one *venue* whose liquidity all payments crossing it
/// contend for. Venue ids are dense per network, assigned by the traffic
/// generator.
pub type VenueId = u32;

/// The global venues one chain instance's hops occupy: hop `i` (escrow
/// `e_i` of the instance's own chain) locks its collateral at
/// `venues[i]`.
///
/// This is the bridge between the Figure 1 chain (one payment, local
/// escrow indices) and a shared-liquidity network (many payments, global
/// collateral budgets): the liquidity book charges hop `i`'s locked value
/// against `venues[i]`'s budget.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VenueRoute {
    /// `venues[i]` is the global venue of the instance's escrow `e_i`.
    pub venues: Vec<VenueId>,
}

impl VenueRoute {
    /// A route through the given venues, in hop order.
    pub fn new(venues: Vec<VenueId>) -> Self {
        VenueRoute { venues }
    }

    /// The dedicated-path route: `n` venues `0..n` nobody else shares
    /// (the paper's single-payment setting embedded in a network).
    pub fn linear(n: usize) -> Self {
        VenueRoute {
            venues: (0..n as VenueId).collect(),
        }
    }

    /// Number of hops the route covers.
    pub fn hops(&self) -> usize {
        self.venues.len()
    }

    /// The venue of hop `i`, if the route covers it.
    pub fn venue(&self, hop: usize) -> Option<VenueId> {
        self.venues.get(hop).copied()
    }

    /// The largest venue id on the route (`None` for an empty route).
    pub fn max_venue(&self) -> Option<VenueId> {
        self.venues.iter().copied().max()
    }

    /// The collateral this payment asks each venue to set aside, summed
    /// per venue (a route may cross the same venue more than once) and
    /// sorted by venue id: hop `i` locks `plan.amounts[i]` at
    /// `venues[i]`. Hops beyond the plan (or routes shorter than the
    /// plan) contribute nothing — callers validate lengths where it
    /// matters.
    pub fn demand(&self, plan: &ValuePlan) -> Vec<(VenueId, u64)> {
        let mut by_venue: std::collections::BTreeMap<VenueId, u64> =
            std::collections::BTreeMap::new();
        for (hop, &venue) in self.venues.iter().enumerate() {
            if let Some(asset) = plan.amounts.get(hop) {
                *by_venue.entry(venue).or_insert(0) += asset.amount;
            }
        }
        by_venue.into_iter().collect()
    }
}

/// The agreed value vector: what each escrow's deal carries. The paper
/// assumes values were agreed beforehand; commissions mean
/// `v_0 ≥ v_1 ≥ … ≥ v_{n-1}`, possibly in different currencies.
#[derive(Debug, Clone)]
pub struct ValuePlan {
    /// `amounts[i]` is the asset locked at escrow `e_i` (from `c_i`, for
    /// `c_{i+1}`).
    pub amounts: Vec<Asset>,
}

impl ValuePlan {
    /// Uniform plan: the same amount at every hop, single currency, zero
    /// commission.
    pub fn uniform(n: usize, amount: u64) -> Self {
        ValuePlan {
            amounts: vec![Asset::new(CurrencyId(0), amount); n],
        }
    }

    /// A plan where each connector keeps `commission` per hop:
    /// `v_i = v_0 − i·commission` (single currency). Panics if the
    /// commission exhausts the value.
    pub fn with_commission(n: usize, v0: u64, commission: u64) -> Self {
        let amounts = (0..n)
            .map(|i| {
                let cut = commission
                    .checked_mul(i as u64)
                    .expect("commission overflow");
                let v = v0.checked_sub(cut).expect("commission exceeds value");
                assert!(v > 0, "hop {i} would carry zero value");
                Asset::new(CurrencyId(0), v)
            })
            .collect();
        ValuePlan { amounts }
    }

    /// A multi-currency plan (one currency per escrow, same magnitude) —
    /// exercising the "different currencies" remark of §2.
    pub fn multi_currency(n: usize, amount: u64) -> Self {
        ValuePlan {
            amounts: (0..n)
                .map(|i| Asset::new(CurrencyId(i as u32), amount))
                .collect(),
        }
    }

    /// Number of hops (escrows).
    pub fn hops(&self) -> usize {
        self.amounts.len()
    }

    /// Splits the plan into `k` parallel sub-plans carrying the same total
    /// value per hop — packetized payments in the sense of Dubovitskaya et
    /// al. (arXiv:2103.02056): one logical payment travels as `k`
    /// independent sub-payments, each over its own escrow path, and the
    /// packet completes when every sub-payment does. Hop `i`'s amount is
    /// divided as evenly as integer division allows, with the remainder
    /// spread over the first sub-plans one unit each.
    ///
    /// Panics if `k = 0` or any hop carries less than `k` units (a
    /// sub-payment of zero value is not a payment).
    pub fn split(&self, k: usize) -> Vec<ValuePlan> {
        assert!(k >= 1, "cannot split into zero sub-payments");
        for (i, a) in self.amounts.iter().enumerate() {
            assert!(
                a.amount >= k as u64,
                "hop {i} carries {} units, too few for {k} sub-payments",
                a.amount
            );
        }
        (0..k as u64)
            .map(|j| ValuePlan {
                amounts: self
                    .amounts
                    .iter()
                    .map(|a| {
                        let share = a.amount / k as u64 + u64::from(j < a.amount % k as u64);
                        Asset::new(a.currency, share)
                    })
                    .collect(),
            })
            .collect()
    }
}

/// Keys and identities for one payment instance: a PKI universe with one
/// key per participant (plus optional TM/notary keys added by scenarios).
pub struct ChainKeys {
    /// Shared verification registry.
    pub pki: Pki,
    /// Customer signers, index `0..=n` (Alice … Bob).
    pub customers: Vec<Signer>,
    /// Escrow signers, index `0..n`.
    pub escrows: Vec<Signer>,
    /// The derived payment identifier.
    pub payment: PaymentId,
}

impl ChainKeys {
    /// Registers keys for every participant of `topo`, deterministically
    /// from `seed`.
    pub fn generate(topo: &ChainTopology, seed: u64) -> Self {
        let mut pki = Pki::new(seed);
        let customers: Vec<Signer> = (0..=topo.n).map(|_| pki.register().1).collect();
        let escrows: Vec<Signer> = (0..topo.n).map(|_| pki.register().1).collect();
        let all: Vec<KeyId> = customers
            .iter()
            .map(|s| s.id())
            .chain(escrows.iter().map(|s| s.id()))
            .collect();
        let payment = PaymentId::derive(seed, &all);
        ChainKeys {
            pki,
            customers,
            escrows,
            payment,
        }
    }

    /// Key of customer `c_i`.
    pub fn customer_key(&self, i: usize) -> KeyId {
        self.customers[i].id()
    }

    /// Key of escrow `e_i`.
    pub fn escrow_key(&self, i: usize) -> KeyId {
        self.escrows[i].id()
    }

    /// Bob's key (`c_n`).
    pub fn bob_key(&self) -> KeyId {
        self.customers.last().expect("n ≥ 1").id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_layout() {
        let t = ChainTopology::new(3);
        assert_eq!(t.participants(), 7);
        assert_eq!(t.customer_pid(0), 0);
        assert_eq!(t.customer_pid(3), 3);
        assert_eq!(t.escrow_pid(0), 4);
        assert_eq!(t.escrow_pid(2), 6);
        assert_eq!(t.next_free_pid(), 7);
    }

    #[test]
    fn roles() {
        let t = ChainTopology::new(3);
        assert_eq!(t.role_of(0), Some(Role::Alice));
        assert_eq!(t.role_of(1), Some(Role::Chloe(1)));
        assert_eq!(t.role_of(2), Some(Role::Chloe(2)));
        assert_eq!(t.role_of(3), Some(Role::Bob));
        assert_eq!(t.role_of(4), Some(Role::Escrow(0)));
        assert_eq!(t.role_of(6), Some(Role::Escrow(2)));
        assert_eq!(t.role_of(7), None);
    }

    #[test]
    #[should_panic(expected = "at least one escrow")]
    fn zero_escrows_rejected() {
        let _ = ChainTopology::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_customer_index_panics() {
        let t = ChainTopology::new(2);
        let _ = t.customer_pid(3);
    }

    #[test]
    fn figure1_rendering() {
        let t = ChainTopology::new(2);
        let fig = t.render_figure1();
        assert!(fig.contains("c0 --- e0 --- c1 --- e1 --- c2"));
        let dot = t.to_dot();
        assert!(dot.contains("Alice"));
        assert!(dot.contains("Bob"));
        assert!(dot.contains("Chloe1"));
        assert!(dot.contains("e1"));
    }

    #[test]
    fn venue_routes_map_hops_to_global_escrows() {
        let r = VenueRoute::linear(3);
        assert_eq!(r.hops(), 3);
        assert_eq!(r.venue(0), Some(0));
        assert_eq!(r.venue(2), Some(2));
        assert_eq!(r.venue(3), None);
        assert_eq!(r.max_venue(), Some(2));
        assert_eq!(VenueRoute::default().max_venue(), None);

        // Demand is summed per venue and sorted by venue id — a route
        // crossing venue 7 twice charges it twice.
        let r = VenueRoute::new(vec![7, 2, 7]);
        let plan = ValuePlan::uniform(3, 100);
        assert_eq!(r.demand(&plan), vec![(2, 100), (7, 200)]);

        // Hops beyond the plan contribute nothing.
        let short_plan = ValuePlan::uniform(2, 50);
        assert_eq!(r.demand(&short_plan), vec![(2, 50), (7, 50)]);
    }

    #[test]
    fn value_plans() {
        let u = ValuePlan::uniform(3, 100);
        assert_eq!(u.hops(), 3);
        assert!(u.amounts.iter().all(|a| a.amount == 100));

        let c = ValuePlan::with_commission(3, 100, 5);
        assert_eq!(
            c.amounts.iter().map(|a| a.amount).collect::<Vec<_>>(),
            vec![100, 95, 90]
        );

        let m = ValuePlan::multi_currency(3, 10);
        assert_eq!(m.amounts[0].currency, CurrencyId(0));
        assert_eq!(m.amounts[2].currency, CurrencyId(2));
    }

    #[test]
    #[should_panic]
    fn commission_exhausting_value_panics() {
        let _ = ValuePlan::with_commission(5, 10, 3);
    }

    #[test]
    fn split_conserves_value_per_hop() {
        let plan = ValuePlan::with_commission(3, 103, 2); // 103, 101, 99
        let parts = plan.split(4);
        assert_eq!(parts.len(), 4);
        for hop in 0..3 {
            let total: u64 = parts.iter().map(|p| p.amounts[hop].amount).sum();
            assert_eq!(total, plan.amounts[hop].amount, "hop {hop}");
            assert_eq!(parts[0].amounts[hop].currency, plan.amounts[hop].currency);
            // Even split: shares differ by at most one unit.
            let lo = parts.iter().map(|p| p.amounts[hop].amount).min().unwrap();
            let hi = parts.iter().map(|p| p.amounts[hop].amount).max().unwrap();
            assert!(hi - lo <= 1);
        }
        // k = 1 is the identity.
        assert_eq!(plan.split(1)[0].amounts[0].amount, 103);
    }

    #[test]
    #[should_panic(expected = "too few")]
    fn split_below_one_unit_per_path_panics() {
        let _ = ValuePlan::uniform(2, 3).split(4);
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let t = ChainTopology::new(2);
        let k1 = ChainKeys::generate(&t, 9);
        let k2 = ChainKeys::generate(&t, 9);
        assert_eq!(k1.payment, k2.payment);
        assert_eq!(k1.bob_key(), k2.bob_key());
        let k3 = ChainKeys::generate(&t, 10);
        assert_ne!(k1.payment, k3.payment);
        // All keys distinct.
        let mut all: Vec<KeyId> = k1
            .customers
            .iter()
            .chain(k1.escrows.iter())
            .map(|s| s.id())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 5);
    }
}
