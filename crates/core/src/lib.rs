//! # xchain-core (`payment`) — cross-chain payment with success guarantees
//!
//! The paper's contribution, executable:
//!
//! * [`topology`] — Figure 1: `n` escrows, Alice, the Chloes, Bob;
//! * [`msg`] — the message alphabet: promises `G(d)`/`P(a)`, `$`, χ, and
//!   the weak protocol's transaction-manager traffic;
//! * [`timing`] — the timeout calculus for `a_i`, `d_i`, ε under clock
//!   drift (the "precise values calculated in \[5\]", reconstructed);
//! * [`timebounded`] — Theorem 1's protocol: Figure 2 both as executable
//!   processes with ledgers and as declarative automata;
//! * [`weak`] — Theorem 3's protocol with a transaction manager (trusted
//!   party / smart contract on a chain / notary committee over consensus);
//! * [`properties`] — executable checkers for C, T, ES, CS1–CS3, L and CC
//!   over finished runs;
//! * [`byzantine`] — adversarial participant strategies for fault
//!   injection;
//! * [`impossibility`] — executable witnesses for Theorem 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod impossibility;
pub mod msg;
pub mod properties;
pub mod timebounded;
pub mod timing;
pub mod topology;
pub mod weak;

pub use msg::{PMsg, PromiseKind, SignedPromise, TmInput, TmInputKind};
pub use timebounded::{ChainOutcome, ChainSetup, ClockPlan, CustomerOutcome};
pub use timing::{SyncParams, TimeoutSchedule};
pub use topology::{ChainKeys, ChainTopology, Role, ValuePlan, VenueId, VenueRoute};
