//! The message alphabet of the cross-chain payment protocols.
//!
//! §4 of the paper: *"We consider three kinds of messages: (i) certificate
//! χ, signed by Bob, (ii) the value $ that is transmitted from one
//! participant to another, and (iii) promises made by escrow e_i to its
//! customers c_i and c_{i+1}"* — the guarantees `G(d)` and `P(a)`. The weak
//! protocol of Theorem 3 adds the transaction-manager traffic: lock
//! notifications, Bob's acceptance, abort requests, decision certificates,
//! and (for the notary-committee manager) embedded consensus messages.
//!
//! Promises are signed by the issuing escrow so a Byzantine escrow cannot
//! disown them and a Byzantine customer cannot fabricate them.

use anta::time::SimDuration;
use consensus::ConsMsg;
use ledger::Asset;
use xcrypto::wire::WireWriter;
use xcrypto::{DecisionCert, KeyId, PaymentId, Pki, Receipt, Signature, Signer, Verdict};

/// Domain label for escrow promises.
pub const DOM_PROMISE: &[u8] = b"xchain/payment/promise";
/// Domain label for weak-protocol transaction-manager inputs.
pub const DOM_TM_INPUT: &[u8] = b"xchain/payment/tm-input";

/// Which promise a signature covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromiseKind {
    /// `G(d)` — to the upstream customer: "if I receive $ from you at my
    /// local time w, I will send you either $ or χ by my local time w + d."
    Guarantee,
    /// `P(a)` — to the downstream customer: "if I receive χ from you at my
    /// time v, with v < now + a, then I will send you $ by my local time
    /// v + ε."
    Promise,
}

fn promise_payload(
    kind: PromiseKind,
    payment: &PaymentId,
    escrow_index: usize,
    bound: SimDuration,
) -> Vec<u8> {
    let mut w = WireWriter::new(DOM_PROMISE);
    w.put_u8(match kind {
        PromiseKind::Guarantee => 1,
        PromiseKind::Promise => 2,
    });
    w.put_bytes(&payment.0);
    w.put_u64(escrow_index as u64);
    w.put_u64(bound.ticks());
    w.finish()
}

/// A signed escrow promise (`G(d)` or `P(a)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedPromise {
    /// The event payload / input kind, per context.
    pub kind: PromiseKind,
    /// The payment instance this belongs to.
    pub payment: PaymentId,
    /// Index `i` of the issuing escrow `e_i`.
    pub escrow_index: usize,
    /// The promised bound: `d_i` for guarantees, `a_i` for promises.
    pub bound: SimDuration,
    /// The issuer's signature.
    pub sig: Signature,
}

impl SignedPromise {
    /// Escrow `e_i` issues a promise.
    pub fn issue(
        signer: &Signer,
        kind: PromiseKind,
        payment: PaymentId,
        escrow_index: usize,
        bound: SimDuration,
    ) -> Self {
        let payload = promise_payload(kind, &payment, escrow_index, bound);
        SignedPromise {
            kind,
            payment,
            escrow_index,
            bound,
            sig: signer.sign(DOM_PROMISE, &payload),
        }
    }

    /// Verifies the promise against the expected escrow key.
    pub fn verify(&self, pki: &Pki, expected_escrow: KeyId) -> bool {
        self.sig.signer == expected_escrow
            && pki.verify(
                &self.sig,
                DOM_PROMISE,
                &promise_payload(self.kind, &self.payment, self.escrow_index, self.bound),
            )
    }
}

/// Weak-protocol inputs to the transaction manager, each signed by its
/// originator so the manager's decision is justified by evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmInputKind {
    /// Escrow `e_i` reports that its deal is locked.
    Locked,
    /// A customer requests an abort (lost patience).
    AbortRequest,
}

fn tm_input_payload(kind: TmInputKind, payment: &PaymentId, index: u64) -> Vec<u8> {
    let mut w = WireWriter::new(DOM_TM_INPUT);
    w.put_u8(match kind {
        TmInputKind::Locked => 1,
        TmInputKind::AbortRequest => 2,
    });
    w.put_bytes(&payment.0);
    w.put_u64(index);
    w.finish()
}

/// A signed transaction-manager input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmInput {
    /// The event payload / input kind, per context.
    pub kind: TmInputKind,
    /// The payment instance this belongs to.
    pub payment: PaymentId,
    /// `Locked`: the escrow index. `AbortRequest`: the customer index.
    pub index: u64,
    /// The issuer's signature.
    pub sig: Signature,
}

impl TmInput {
    /// Signs a TM input.
    pub fn issue(signer: &Signer, kind: TmInputKind, payment: PaymentId, index: u64) -> Self {
        let payload = tm_input_payload(kind, &payment, index);
        TmInput {
            kind,
            payment,
            index,
            sig: signer.sign(DOM_TM_INPUT, &payload),
        }
    }

    /// Verifies origin authenticity against the expected signer.
    pub fn verify(&self, pki: &Pki, expected: KeyId) -> bool {
        self.sig.signer == expected
            && pki.verify(
                &self.sig,
                DOM_TM_INPUT,
                &tm_input_payload(self.kind, &self.payment, self.index),
            )
    }
}

/// Every message exchanged in the payment protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum PMsg {
    /// `G(d_i)` or `P(a_i)` from an escrow.
    Promise(SignedPromise),
    /// `$` — a value transfer / lock instruction / payout notification.
    Money {
        /// The payment instance this belongs to.
        payment: PaymentId,
        /// The value at stake.
        asset: Asset,
    },
    /// `χ` — Bob's receipt.
    Receipt(Receipt),
    /// Weak protocol: signed lock notice or abort request to the TM.
    TmInput(TmInput),
    /// Weak protocol: Bob's signed acceptance sent to the TM (χ addressed
    /// to the manager rather than up the chain).
    Accept(Receipt),
    /// Weak protocol: the decision certificate χc / χa.
    Decision(DecisionCert),
    /// Weak protocol, notary-committee manager: embedded consensus traffic.
    Cons(ConsMsg<Verdict>),
}

impl PMsg {
    /// Human-readable kind tag (used in trace comparisons and experiment
    /// tables).
    pub fn kind(&self) -> &'static str {
        match self {
            PMsg::Promise(p) => match p.kind {
                PromiseKind::Guarantee => "G",
                PromiseKind::Promise => "P",
            },
            PMsg::Money { .. } => "$",
            PMsg::Receipt(_) => "chi",
            PMsg::TmInput(t) => match t.kind {
                TmInputKind::Locked => "locked",
                TmInputKind::AbortRequest => "abort-req",
            },
            PMsg::Accept(_) => "accept",
            PMsg::Decision(d) => match d.verdict {
                Verdict::Commit => "chi-c",
                Verdict::Abort => "chi-a",
            },
            PMsg::Cons(_) => "cons",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Pki, Vec<Signer>, PaymentId) {
        let mut pki = Pki::new(5);
        let signers: Vec<Signer> = pki.register_many(4).into_iter().map(|(_, s)| s).collect();
        let ids: Vec<KeyId> = signers.iter().map(|s| s.id()).collect();
        let payment = PaymentId::derive(1, &ids);
        (pki, signers, payment)
    }

    #[test]
    fn promise_roundtrip() {
        let (pki, s, payment) = setup();
        let p = SignedPromise::issue(
            &s[0],
            PromiseKind::Guarantee,
            payment,
            0,
            SimDuration::from_millis(10),
        );
        assert!(p.verify(&pki, s[0].id()));
        assert!(!p.verify(&pki, s[1].id()));
    }

    #[test]
    fn promise_tamper_detected() {
        let (pki, s, payment) = setup();
        let mut p = SignedPromise::issue(
            &s[0],
            PromiseKind::Promise,
            payment,
            2,
            SimDuration::from_millis(10),
        );
        p.bound = SimDuration::from_millis(99); // inflate the deadline
        assert!(!p.verify(&pki, s[0].id()));
        let mut q = SignedPromise::issue(
            &s[0],
            PromiseKind::Promise,
            payment,
            2,
            SimDuration::from_millis(10),
        );
        q.kind = PromiseKind::Guarantee; // reinterpret P as G
        assert!(!q.verify(&pki, s[0].id()));
    }

    #[test]
    fn tm_input_roundtrip_and_tamper() {
        let (pki, s, payment) = setup();
        let t = TmInput::issue(&s[2], TmInputKind::Locked, payment, 2);
        assert!(t.verify(&pki, s[2].id()));
        assert!(!t.verify(&pki, s[0].id()));
        let mut bad = t;
        bad.kind = TmInputKind::AbortRequest; // flip lock into abort request
        assert!(!bad.verify(&pki, s[2].id()));
        let mut bad2 = t;
        bad2.index = 0;
        assert!(!bad2.verify(&pki, s[2].id()));
    }

    #[test]
    fn message_kinds() {
        let (_, s, payment) = setup();
        let g = PMsg::Promise(SignedPromise::issue(
            &s[0],
            PromiseKind::Guarantee,
            payment,
            0,
            SimDuration::ZERO,
        ));
        assert_eq!(g.kind(), "G");
        let m = PMsg::Money {
            payment,
            asset: Asset::new(ledger::CurrencyId(0), 5),
        };
        assert_eq!(m.kind(), "$");
        let chi = PMsg::Receipt(Receipt::issue(&s[3], payment));
        assert_eq!(chi.kind(), "chi");
        let d = PMsg::Decision(DecisionCert::issue_single(&s[0], payment, Verdict::Abort));
        assert_eq!(d.kind(), "chi-a");
    }
}
