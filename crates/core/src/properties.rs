//! Executable checkers for the paper's correctness properties.
//!
//! Definitions 1 and 2 quantify over protocol executions ("for each
//! participant…", "upon termination…"). This module turns each clause into
//! a decidable predicate over a finished run's extracted outcome, given
//! which participants were substituted by Byzantine strategies. The
//! experiments evaluate these predicates over thousands of randomized and
//! exhaustively-explored runs; a single `Violated` anywhere falsifies the
//! corresponding theorem's claim for this implementation.
//!
//! The conditionality of the paper's clauses is encoded precisely: safety
//! for a customer is only promised *"provided her escrow(s) abide by the
//! protocol"*, strong liveness only *"if all parties abide"*. Clauses whose
//! precondition fails return [`PropCheck::NotApplicable`] rather than
//! `Holds`, so reports distinguish "verified" from "vacuous".

use crate::timebounded::{ChainOutcome, ChainSetup, CustomerOutcome};
use crate::topology::Role;
use crate::weak::WeakOutcome;
use xcrypto::Verdict;

/// Result of checking one property clause on one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropCheck {
    /// The clause's precondition held and the conclusion was verified.
    Holds,
    /// The clause was violated; the string says how.
    Violated(String),
    /// The clause's precondition did not apply to this run.
    NotApplicable,
}

impl PropCheck {
    /// True unless violated.
    pub fn ok(&self) -> bool {
        !matches!(self, PropCheck::Violated(_))
    }

    fn and_also(self, other: PropCheck) -> PropCheck {
        match (self, other) {
            (v @ PropCheck::Violated(_), _) => v,
            (_, v @ PropCheck::Violated(_)) => v,
            (PropCheck::Holds, _) | (_, PropCheck::Holds) => PropCheck::Holds,
            _ => PropCheck::NotApplicable,
        }
    }
}

/// Which participants abide by the protocol in a run.
#[derive(Debug, Clone, Default)]
pub struct Compliance {
    byzantine: Vec<Role>,
}

impl Compliance {
    /// Everybody abides.
    pub fn all_compliant() -> Self {
        Compliance::default()
    }

    /// The given roles were substituted by non-abiding processes.
    pub fn with_byzantine(byzantine: Vec<Role>) -> Self {
        Compliance { byzantine }
    }

    /// Whether `role` abides.
    pub fn abides(&self, role: Role) -> bool {
        !self.byzantine.contains(&role)
    }

    /// Whether every participant abides.
    pub fn all_abide(&self) -> bool {
        self.byzantine.is_empty()
    }
}

/// Verdicts for every clause of Definition 1 (time-bounded problem).
#[derive(Debug, Clone)]
pub struct Definition1Verdicts {
    /// ES — no abiding escrow loses money.
    pub es: PropCheck,
    /// CS1 — Alice ends with her money back or with χ.
    pub cs1: PropCheck,
    /// CS2 — Bob ends paid or having never issued χ.
    pub cs2: PropCheck,
    /// CS3 — every abiding connector ends whole.
    pub cs3: PropCheck,
    /// T — abiding customers terminate, Alice within the a-priori bound.
    pub t: PropCheck,
    /// L — all abiding ⇒ Bob is paid.
    pub l: PropCheck,
}

impl Definition1Verdicts {
    /// True when no clause is violated.
    pub fn all_ok(&self) -> bool {
        self.es.ok()
            && self.cs1.ok()
            && self.cs2.ok()
            && self.cs3.ok()
            && self.t.ok()
            && self.l.ok()
    }

    /// All violations, labelled.
    pub fn violations(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        for (name, check) in [
            ("ES", &self.es),
            ("CS1", &self.cs1),
            ("CS2", &self.cs2),
            ("CS3", &self.cs3),
            ("T", &self.t),
            ("L", &self.l),
        ] {
            if let PropCheck::Violated(why) = check {
                out.push((name, why.clone()));
            }
        }
        out
    }
}

/// Checks Definition 1 against a finished time-bounded run.
pub fn check_definition1(
    outcome: &ChainOutcome,
    setup: &ChainSetup,
    compliance: &Compliance,
) -> Definition1Verdicts {
    let n = outcome.n;

    // ES — conservation at every abiding escrow.
    let mut es = PropCheck::NotApplicable;
    for i in 0..n {
        if !compliance.abides(Role::Escrow(i)) {
            continue;
        }
        es = es.and_also(match outcome.conservation[i] {
            Some(true) => PropCheck::Holds,
            Some(false) => PropCheck::Violated(format!("escrow {i} lost money")),
            None => PropCheck::Violated(format!("escrow {i} state unreadable")),
        });
    }

    // CS1 — Alice (needs Alice and e_0 abiding).
    let cs1 = if compliance.abides(Role::Alice) && compliance.abides(Role::Escrow(0)) {
        match outcome.customers[0] {
            Some(view) => match (view.sent_money, view.halted_at.is_some(), view.outcome) {
                (false, _, _) => PropCheck::Holds, // never parted with money
                (true, true, CustomerOutcome::Refunded | CustomerOutcome::GotReceipt) => {
                    PropCheck::Holds
                }
                (true, true, other) => {
                    PropCheck::Violated(format!("Alice terminated as {other:?}"))
                }
                (true, false, _) => PropCheck::NotApplicable, // termination is T's business
            },
            None => PropCheck::Violated("compliant Alice unreadable".into()),
        }
    } else {
        PropCheck::NotApplicable
    };

    // CS2 — Bob (needs Bob and e_{n-1} abiding).
    let cs2 = if compliance.abides(Role::Bob) && compliance.abides(Role::Escrow(n - 1)) {
        match (outcome.customers[n], outcome.bob_issued_chi) {
            (Some(view), Some(issued)) => {
                if view.halted_at.is_some() || outcome.quiescent {
                    if issued && view.outcome != CustomerOutcome::Paid {
                        PropCheck::Violated("Bob issued χ but was not paid".into())
                    } else {
                        PropCheck::Holds
                    }
                } else {
                    PropCheck::NotApplicable
                }
            }
            _ => PropCheck::Violated("compliant Bob unreadable".into()),
        }
    } else {
        PropCheck::NotApplicable
    };

    // CS3 — each connector (needs her and both her escrows abiding).
    let mut cs3 = PropCheck::NotApplicable;
    for i in 1..n {
        if !(compliance.abides(Role::Chloe(i))
            && compliance.abides(Role::Escrow(i - 1))
            && compliance.abides(Role::Escrow(i)))
        {
            continue;
        }
        let check = match outcome.customers[i] {
            Some(view) => match (view.sent_money, view.halted_at.is_some(), view.outcome) {
                (false, _, _) => PropCheck::Holds,
                (true, true, CustomerOutcome::Refunded | CustomerOutcome::Reimbursed) => {
                    match outcome.net_positions[i] {
                        Some(net) if net < 0 => {
                            PropCheck::Violated(format!("Chloe{i} terminated {net} out of pocket"))
                        }
                        _ => PropCheck::Holds,
                    }
                }
                (true, true, other) => {
                    PropCheck::Violated(format!("Chloe{i} terminated as {other:?}"))
                }
                (true, false, _) => PropCheck::NotApplicable,
            },
            None => PropCheck::Violated(format!("compliant Chloe{i} unreadable")),
        };
        cs3 = cs3.and_also(check);
    }

    // T — abiding customers (with abiding escrows) terminate; Alice within
    // her a-priori bound. Only meaningful on quiescent runs (otherwise the
    // horizon, not the protocol, stopped the clock).
    let t = if outcome.quiescent {
        let mut t = PropCheck::NotApplicable;
        for i in 0..=n {
            let role = if i == 0 {
                Role::Alice
            } else if i == n {
                Role::Bob
            } else {
                Role::Chloe(i)
            };
            if !compliance.abides(role) {
                continue;
            }
            let escrows_ok = match role {
                Role::Alice => compliance.abides(Role::Escrow(0)),
                Role::Bob => compliance.abides(Role::Escrow(n - 1)),
                Role::Chloe(i) => {
                    compliance.abides(Role::Escrow(i - 1)) && compliance.abides(Role::Escrow(i))
                }
                Role::Escrow(_) => unreachable!(),
            };
            if !escrows_ok {
                continue;
            }
            // The T clause covers customers that made a payment or issued
            // a certificate.
            let engaged = match outcome.customers[i] {
                Some(v) => v.sent_money || (i == n && outcome.bob_issued_chi == Some(true)),
                None => false,
            };
            if !engaged {
                continue;
            }
            let check = match outcome.customers[i] {
                Some(view) if view.halted_at.is_some() => PropCheck::Holds,
                Some(_) => PropCheck::Violated(format!("customer {i} never terminated")),
                None => PropCheck::Violated(format!("compliant customer {i} unreadable")),
            };
            t = t.and_also(check);
        }
        // Alice's time bound.
        if let (Some(view), Some(sent)) = (outcome.customers[0], outcome.alice_sent_local) {
            if compliance.abides(Role::Alice) && compliance.abides(Role::Escrow(0)) {
                if let Some(halt_local) = view.halted_local {
                    let elapsed = halt_local.saturating_since(sent);
                    if elapsed > setup.schedule.alice_bound {
                        t = t.and_also(PropCheck::Violated(format!(
                            "Alice terminated after {elapsed}, bound {}",
                            setup.schedule.alice_bound
                        )));
                    } else {
                        t = t.and_also(PropCheck::Holds);
                    }
                }
            }
        }
        t
    } else {
        PropCheck::NotApplicable
    };

    // L — all abide ⇒ Bob paid.
    let l = if compliance.all_abide() {
        if outcome.bob_paid() {
            PropCheck::Holds
        } else {
            PropCheck::Violated("all parties abided but Bob was not paid".into())
        }
    } else {
        PropCheck::NotApplicable
    };

    Definition1Verdicts {
        es,
        cs1,
        cs2,
        cs3,
        t,
        l,
    }
}

/// Verdicts for every clause of Definition 2 (weak problem).
#[derive(Debug, Clone)]
pub struct Definition2Verdicts {
    /// CC — never both χc and χa.
    pub cc: PropCheck,
    /// ES — as in Definition 1.
    pub es: PropCheck,
    /// CS1 (weak) — Alice ends with money back or χc.
    pub cs1: PropCheck,
    /// CS2 (weak) — Bob ends paid or holding χa.
    pub cs2: PropCheck,
    /// CS3 — connectors end whole.
    pub cs3: PropCheck,
    /// T — abiding customers terminate.
    pub t: PropCheck,
    /// Weak L — all abiding and patient ⇒ Bob eventually paid.
    pub weak_l: PropCheck,
}

impl Definition2Verdicts {
    /// True when no clause is violated.
    pub fn all_ok(&self) -> bool {
        self.cc.ok()
            && self.es.ok()
            && self.cs1.ok()
            && self.cs2.ok()
            && self.cs3.ok()
            && self.t.ok()
            && self.weak_l.ok()
    }

    /// All violations, labelled.
    pub fn violations(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        for (name, check) in [
            ("CC", &self.cc),
            ("ES", &self.es),
            ("CS1w", &self.cs1),
            ("CS2w", &self.cs2),
            ("CS3", &self.cs3),
            ("T", &self.t),
            ("weakL", &self.weak_l),
        ] {
            if let PropCheck::Violated(why) = check {
                out.push((name, why.clone()));
            }
        }
        out
    }
}

/// Checks Definition 2 against a finished weak-protocol run.
///
/// `everyone_patient` must be true iff no compliant customer was configured
/// to lose patience — the precondition of weak liveness.
pub fn check_definition2(
    outcome: &WeakOutcome,
    compliance: &Compliance,
    everyone_patient: bool,
) -> Definition2Verdicts {
    let n = outcome.n;

    let cc = if outcome.cc_ok {
        PropCheck::Holds
    } else {
        PropCheck::Violated("both χc and χa were accepted".into())
    };

    let mut es = PropCheck::NotApplicable;
    for i in 0..n {
        if !compliance.abides(Role::Escrow(i)) {
            continue;
        }
        es = es.and_also(match outcome.conservation[i] {
            Some(true) => PropCheck::Holds,
            Some(false) => PropCheck::Violated(format!("escrow {i} lost money")),
            None => PropCheck::Violated(format!("escrow {i} state unreadable")),
        });
    }

    // CS1 (weak): upon termination Alice has her money back or holds χc.
    let cs1 = if compliance.abides(Role::Alice) && compliance.abides(Role::Escrow(0)) {
        match (outcome.customer_verdicts[0], outcome.net_positions[0]) {
            (Some(Some(Verdict::Commit)), _) => PropCheck::Holds, // holds χc
            (Some(Some(Verdict::Abort)), Some(net)) => {
                if net == 0 {
                    PropCheck::Holds
                } else {
                    PropCheck::Violated(format!("Alice aborted yet net {net}"))
                }
            }
            (Some(None), _) => PropCheck::NotApplicable, // not terminated: T's business
            (Some(Some(Verdict::Abort)), None) => {
                PropCheck::Violated("Alice's position unreadable".into())
            }
            (None, _) => PropCheck::Violated("compliant Alice unreadable".into()),
        }
    } else {
        PropCheck::NotApplicable
    };

    // CS2 (weak): Bob ends paid or holding χa.
    let cs2 = if compliance.abides(Role::Bob) && compliance.abides(Role::Escrow(n - 1)) {
        match outcome.customer_verdicts[n] {
            Some(Some(Verdict::Commit)) => {
                if outcome.bob_paid {
                    PropCheck::Holds
                } else {
                    PropCheck::Violated("χc accepted but Bob unpaid".into())
                }
            }
            Some(Some(Verdict::Abort)) => PropCheck::Holds, // holds χa
            Some(None) => PropCheck::NotApplicable,
            None => PropCheck::Violated("compliant Bob unreadable".into()),
        }
    } else {
        PropCheck::NotApplicable
    };

    let mut cs3 = PropCheck::NotApplicable;
    for i in 1..n {
        if !(compliance.abides(Role::Chloe(i))
            && compliance.abides(Role::Escrow(i - 1))
            && compliance.abides(Role::Escrow(i)))
        {
            continue;
        }
        let check = match (outcome.customer_verdicts[i], outcome.net_positions[i]) {
            (Some(Some(_)), Some(net)) if net >= 0 => PropCheck::Holds,
            (Some(Some(_)), Some(net)) => {
                PropCheck::Violated(format!("Chloe{i} terminated {net} out of pocket"))
            }
            (Some(None), _) => PropCheck::NotApplicable,
            _ => PropCheck::Violated(format!("compliant Chloe{i} unreadable")),
        };
        cs3 = cs3.and_also(check);
    }

    // T: abiding customers terminate eventually (all of ours do, on the
    // decision certificate).
    let t = if (0..=n).all(|i| {
        let role = if i == 0 {
            Role::Alice
        } else if i == n {
            Role::Bob
        } else {
            Role::Chloe(i)
        };
        !compliance.abides(role) || outcome.customer_verdicts[i].is_none()
    }) {
        PropCheck::NotApplicable
    } else if outcome.all_customers_terminated {
        PropCheck::Holds
    } else {
        // Compliant customers not terminated: a violation only if a
        // decision certificate should have reached them. With no decision
        // at all (e.g. a withholding participant and nobody impatient) the
        // run simply has not terminated yet — the paper's T for the weak
        // protocol is conditional on the manager reaching a decision,
        // which patience policies guarantee for abiding customers.
        match outcome.verdict() {
            Some(_) => PropCheck::Violated(
                "a decision exists but some compliant customer never terminated".into(),
            ),
            None => PropCheck::NotApplicable,
        }
    };

    // Weak liveness: all abide + all patient ⇒ Bob paid.
    let weak_l = if compliance.all_abide() && everyone_patient {
        if outcome.bob_paid {
            PropCheck::Holds
        } else {
            PropCheck::Violated("all patient and abiding, yet Bob unpaid".into())
        }
    } else {
        PropCheck::NotApplicable
    };

    Definition2Verdicts {
        cc,
        es,
        cs1,
        cs2,
        cs3,
        t,
        weak_l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timebounded::{ChainSetup, ClockPlan};
    use crate::timing::SyncParams;
    use crate::topology::ValuePlan;
    use crate::weak::{Patience, TmKind, WeakOutcome, WeakSetup};
    use anta::net::SyncNet;
    use anta::oracle::RandomOracle;
    use anta::time::SimDuration;

    fn run_tb(n: usize, seed: u64) -> (ChainOutcome, ChainSetup) {
        let setup = ChainSetup::new(n, ValuePlan::uniform(n, 100), SyncParams::baseline(), 5);
        let mut eng = setup.build_engine(
            Box::new(SyncNet::new(setup.params.delta, 8)),
            Box::new(RandomOracle::seeded(seed)),
            ClockPlan::Sampled { seed },
        );
        let report = eng.run();
        (ChainOutcome::extract(&eng, &setup, report.quiescent), setup)
    }

    #[test]
    fn definition1_holds_on_happy_paths() {
        for n in 1..=5 {
            let (outcome, setup) = run_tb(n, n as u64);
            let v = check_definition1(&outcome, &setup, &Compliance::all_compliant());
            assert!(v.all_ok(), "n = {n}: {:?}", v.violations());
            assert_eq!(v.l, PropCheck::Holds);
            assert_eq!(v.es, PropCheck::Holds);
        }
    }

    #[test]
    fn definition1_detects_seeded_cs2_violation() {
        // Fabricate an outcome where Bob issued χ but ended unpaid.
        let (mut outcome, setup) = run_tb(2, 3);
        outcome.bob_issued_chi = Some(true);
        if let Some(view) = outcome.customers[2].as_mut() {
            view.outcome = CustomerOutcome::Pending;
        }
        let v = check_definition1(&outcome, &setup, &Compliance::all_compliant());
        assert!(!v.cs2.ok());
        assert!(v.violations().iter().any(|(name, _)| *name == "CS2"));
    }

    #[test]
    fn definition1_detects_seeded_cs3_violation() {
        let (mut outcome, setup) = run_tb(3, 4);
        outcome.net_positions[1] = Some(-100);
        let v = check_definition1(&outcome, &setup, &Compliance::all_compliant());
        assert!(!v.cs3.ok());
    }

    #[test]
    fn definition1_clauses_vacuous_under_byzantine_preconditions() {
        let (outcome, setup) = run_tb(2, 5);
        // With e_0 Byzantine, CS1 and L are not applicable.
        let c = Compliance::with_byzantine(vec![Role::Escrow(0)]);
        let v = check_definition1(&outcome, &setup, &c);
        assert_eq!(v.cs1, PropCheck::NotApplicable);
        assert_eq!(v.l, PropCheck::NotApplicable);
        // ES still applies to the other escrow.
        assert_eq!(v.es, PropCheck::Holds);
    }

    #[test]
    fn definition1_alice_bound_violation_detected() {
        let (mut outcome, setup) = run_tb(1, 6);
        // Pretend Alice halted far beyond the bound.
        outcome.alice_sent_local = Some(anta::time::SimTime::ZERO);
        if let Some(view) = outcome.customers[0].as_mut() {
            view.halted_local = Some(anta::time::SimTime::ZERO + setup.schedule.alice_bound * 3);
        }
        let v = check_definition1(&outcome, &setup, &Compliance::all_compliant());
        assert!(!v.t.ok());
    }

    fn run_weak(setup: &WeakSetup, seed: u64) -> WeakOutcome {
        let mut eng = setup.build_engine(
            Box::new(SyncNet::new(SimDuration::from_millis(5), 8)),
            Box::new(RandomOracle::seeded(seed)),
        );
        eng.run();
        WeakOutcome::extract(&eng, setup)
    }

    #[test]
    fn definition2_holds_on_patient_runs() {
        for kind in [
            TmKind::Trusted,
            TmKind::Contract,
            TmKind::Committee { k: 4 },
        ] {
            let s = WeakSetup::new(2, ValuePlan::uniform(2, 100), kind, 11);
            let o = run_weak(&s, 1);
            let v = check_definition2(&o, &Compliance::all_compliant(), true);
            assert!(v.all_ok(), "{kind:?}: {:?}", v.violations());
            assert_eq!(v.weak_l, PropCheck::Holds, "{kind:?}");
        }
    }

    #[test]
    fn definition2_holds_on_impatient_runs() {
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 100), TmKind::Trusted, 12)
            .with_patience(1, Patience::until(SimDuration::from_millis(1)));
        let o = run_weak(&s, 2);
        let v = check_definition2(&o, &Compliance::all_compliant(), false);
        assert!(v.all_ok(), "{:?}", v.violations());
        // weak L is vacuous when someone is impatient.
        assert_eq!(v.weak_l, PropCheck::NotApplicable);
    }

    #[test]
    fn definition2_detects_cc_violation() {
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 100), TmKind::Trusted, 13);
        let mut o = run_weak(&s, 3);
        o.cc_ok = false;
        let v = check_definition2(&o, &Compliance::all_compliant(), true);
        assert!(!v.cc.ok());
    }

    #[test]
    fn definition2_detects_unpaid_commit() {
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 100), TmKind::Trusted, 14);
        let mut o = run_weak(&s, 4);
        o.bob_paid = false; // χc exists but money never moved
        let v = check_definition2(&o, &Compliance::all_compliant(), true);
        assert!(!v.cs2.ok());
        assert!(!v.weak_l.ok());
    }

    #[test]
    fn propcheck_combinators() {
        assert!(PropCheck::Holds.ok());
        assert!(PropCheck::NotApplicable.ok());
        assert!(!PropCheck::Violated("x".into()).ok());
        assert_eq!(
            PropCheck::Holds.and_also(PropCheck::NotApplicable),
            PropCheck::Holds
        );
        assert!(!PropCheck::Holds
            .and_also(PropCheck::Violated("y".into()))
            .ok());
    }
}
