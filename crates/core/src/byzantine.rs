//! Byzantine participant strategies — fault injection for the safety
//! claims.
//!
//! The paper's safety properties (ES, CS1–CS3, CC) are unconditional on
//! the *other* participants' behaviour: "These requirements do not assume
//! that any other participant abides by the protocol, and should hold no
//! matter how malicious the other participants turn out to be" — except
//! that a customer's security presumes her own escrow(s) abide. The
//! strategies here exercise exactly those quantifiers: each substitutes
//! one (or more) participants with an adversarial process, and the tests
//! assert via [`crate::properties`] that everyone else keeps their
//! guarantees.

use crate::msg::{PMsg, TmInput, TmInputKind};
use anta::process::{Ctx, Pid, Process, TimerId};
use anta::time::SimDuration;
use std::sync::Arc;
use xcrypto::{PaymentId, Pki, Receipt, Signer};

/// Wraps any process and crashes it (silently drops all events) once the
/// local clock passes `at`. Models fail-stop at an arbitrary protocol
/// step.
#[derive(Debug)]
pub struct CrashAfter {
    inner: Box<dyn Process<PMsg>>,
    at: SimDuration,
    crashed: bool,
}

/// Timer id reserved for the crash fuse (far outside protocol ranges).
const CRASH_TIMER: TimerId = u64::MAX;

impl CrashAfter {
    /// Crashes `inner` at local time `at`.
    pub fn new(inner: Box<dyn Process<PMsg>>, at: SimDuration) -> Self {
        CrashAfter {
            inner,
            at,
            crashed: false,
        }
    }
}

impl Clone for CrashAfter {
    fn clone(&self) -> Self {
        CrashAfter {
            inner: self.inner.box_clone(),
            at: self.at,
            crashed: self.crashed,
        }
    }
}

impl Process<PMsg> for CrashAfter {
    fn on_start(&mut self, ctx: &mut Ctx<PMsg>) {
        ctx.set_timer_after(CRASH_TIMER, self.at);
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        if !self.crashed {
            self.inner.on_message(from, msg, ctx);
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<PMsg>) {
        if id == CRASH_TIMER {
            self.crashed = true;
            ctx.mark("crashed", 0);
            return;
        }
        if !self.crashed {
            self.inner.on_timer(id, ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

/// A Bob that deliberately issues χ *late*: he waits `delay` after
/// receiving `P(a_{n-1})` before sending the certificate — past the
/// escrow's deadline if `delay` exceeds it. A late Bob is not abiding, so
/// CS2 does not protect him; the tests assert everyone else stays whole.
#[derive(Debug, Clone)]
pub struct LateBob {
    escrow: Pid,
    signer: Signer,
    payment: PaymentId,
    delay: SimDuration,
    issued: bool,
}

const LATE_TIMER: TimerId = 7;

impl LateBob {
    /// Builds a Bob who sits on χ for `delay`.
    pub fn new(escrow: Pid, signer: Signer, payment: PaymentId, delay: SimDuration) -> Self {
        LateBob {
            escrow,
            signer,
            payment,
            delay,
            issued: false,
        }
    }
}

impl Process<PMsg> for LateBob {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        if from == self.escrow && matches!(msg, PMsg::Promise(_)) && !self.issued {
            self.issued = true;
            ctx.set_timer_after(LATE_TIMER, self.delay);
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<PMsg>) {
        if id == LATE_TIMER {
            let chi = Receipt::issue(&self.signer, self.payment);
            ctx.send(self.escrow, PMsg::Receipt(chi));
            ctx.mark("late_bob_sent_chi", 0);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

/// A connector that tries to fabricate χ (signing it herself) instead of
/// paying downstream — the classic theft attempt, defeated by
/// authentication.
#[derive(Debug, Clone)]
pub struct ForgingChloe {
    up_escrow: Pid,
    signer: Signer,
    payment: PaymentId,
    fired: bool,
}

impl ForgingChloe {
    /// Builds the forger (she targets her upstream escrow directly).
    pub fn new(up_escrow: Pid, signer: Signer, payment: PaymentId) -> Self {
        ForgingChloe {
            up_escrow,
            signer,
            payment,
            fired: false,
        }
    }
}

impl Process<PMsg> for ForgingChloe {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, _from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        // On the first promise she sees, she skips paying and immediately
        // sends a self-signed "certificate" upstream.
        if matches!(msg, PMsg::Promise(_)) && !self.fired {
            self.fired = true;
            let forged = Receipt::issue(&self.signer, self.payment);
            ctx.send(self.up_escrow, PMsg::Receipt(forged));
            ctx.mark("forged_chi_sent", 0);
        }
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

/// An escrow that takes the money and does nothing else — theft by a
/// trusted party. The paper's trust model is explicit that the victim's
/// customer security is forfeit (she trusted this escrow); the tests
/// assert the *other* hops stay safe.
#[derive(Debug, Clone)]
pub struct ThievingEscrow {
    up: Pid,
    signer: Signer,
    payment: PaymentId,
    index: usize,
    d_bound: SimDuration,
}

impl ThievingEscrow {
    /// Builds the thief; it issues a perfectly normal-looking `G(d)` so
    /// the upstream customer engages.
    pub fn new(
        up: Pid,
        signer: Signer,
        payment: PaymentId,
        index: usize,
        d_bound: SimDuration,
    ) -> Self {
        ThievingEscrow {
            up,
            signer,
            payment,
            index,
            d_bound,
        }
    }
}

impl Process<PMsg> for ThievingEscrow {
    fn on_start(&mut self, ctx: &mut Ctx<PMsg>) {
        let g = crate::msg::SignedPromise::issue(
            &self.signer,
            crate::msg::PromiseKind::Guarantee,
            self.payment,
            self.index,
            self.d_bound,
        );
        ctx.send(self.up, PMsg::Promise(g));
    }

    fn on_message(&mut self, _from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        if matches!(msg, PMsg::Money { .. }) {
            ctx.mark("escrow_stole", self.index as i64);
            // …and never sends P, χ, or a refund.
        }
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

/// Weak protocol: a customer who forges abort requests *in other
/// customers' names*. Authentication makes these inert; her own (honest)
/// abort right is unaffected.
#[derive(Debug, Clone)]
pub struct ImpersonatingAborter {
    tm_pids: Vec<Pid>,
    signer: Signer,
    pki: Arc<Pki>,
    payment: PaymentId,
    /// The customer index she pretends to be.
    victim_index: u64,
}

impl ImpersonatingAborter {
    /// Builds the impersonator.
    pub fn new(
        tm_pids: Vec<Pid>,
        signer: Signer,
        pki: Arc<Pki>,
        payment: PaymentId,
        victim_index: u64,
    ) -> Self {
        ImpersonatingAborter {
            tm_pids,
            signer,
            pki,
            payment,
            victim_index,
        }
    }
}

impl Process<PMsg> for ImpersonatingAborter {
    fn on_start(&mut self, ctx: &mut Ctx<PMsg>) {
        let _ = &self.pki; // kept: a real attacker could probe it too
                           // Signed with HER key but claiming the victim's index: the
                           // evidence verifier checks index-vs-key binding and drops it.
        let forged = TmInput::issue(
            &self.signer,
            TmInputKind::AbortRequest,
            self.payment,
            self.victim_index,
        );
        for &tm in &self.tm_pids {
            ctx.send(tm, PMsg::TmInput(forged));
        }
        ctx.mark("impersonated_abort_sent", self.victim_index as i64);
    }

    fn on_message(&mut self, _f: Pid, _m: PMsg, _c: &mut Ctx<PMsg>) {}
    fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{check_definition1, check_definition2, Compliance, PropCheck};
    use crate::timebounded::{ChainOutcome, ChainSetup, ClockPlan, CustomerOutcome, EscrowState};
    use crate::timing::SyncParams;
    use crate::topology::{Role, ValuePlan};
    use crate::weak::{TmKind, WeakOutcome, WeakSetup};
    use anta::net::SyncNet;
    use anta::oracle::RandomOracle;
    use anta::process::InertProcess;

    fn tb_setup(n: usize) -> ChainSetup {
        ChainSetup::new(n, ValuePlan::uniform(n, 100), SyncParams::baseline(), 21)
    }

    fn run_with(
        setup: &ChainSetup,
        seed: u64,
        byz: Vec<Role>,
        make: impl FnMut(Role) -> Option<Box<dyn Process<PMsg>>>,
    ) -> (ChainOutcome, Compliance) {
        let mut eng = setup.build_engine_with(
            Box::new(SyncNet::new(setup.params.delta, 8)),
            Box::new(RandomOracle::seeded(seed)),
            ClockPlan::Sampled { seed },
            make,
        );
        let report = eng.run();
        (
            ChainOutcome::extract(&eng, setup, report.quiescent),
            Compliance::with_byzantine(byz),
        )
    }

    #[test]
    fn crashed_bob_everyone_else_safe() {
        let setup = tb_setup(3);
        let (outcome, compliance) = run_with(&setup, 1, vec![Role::Bob], |role| {
            (role == Role::Bob).then(|| Box::new(InertProcess) as Box<dyn Process<PMsg>>)
        });
        let v = check_definition1(&outcome, &setup, &compliance);
        assert!(v.all_ok(), "{:?}", v.violations());
        // Everyone got refunded.
        assert_eq!(
            outcome.customers[0].unwrap().outcome,
            CustomerOutcome::Refunded
        );
        for i in 1..3 {
            assert_eq!(
                outcome.customers[i].unwrap().outcome,
                CustomerOutcome::Refunded
            );
            assert_eq!(outcome.net_positions[i], Some(0));
        }
        assert!(outcome
            .escrow_states
            .iter()
            .all(|s| *s == Some(EscrowState::Refunded)));
    }

    #[test]
    fn late_bob_hurts_only_himself() {
        let setup = tb_setup(2);
        let delay = setup.schedule.a[1] + setup.params.delta * 4;
        let bob_escrow = setup.topo.escrow_pid(1);
        let signer = setup.customer_signer(2).clone();
        let payment = setup.payment;
        let (outcome, compliance) = run_with(&setup, 2, vec![Role::Bob], move |role| {
            (role == Role::Bob).then(|| {
                Box::new(LateBob::new(bob_escrow, signer.clone(), payment, delay))
                    as Box<dyn Process<PMsg>>
            })
        });
        let v = check_definition1(&outcome, &setup, &compliance);
        assert!(v.all_ok(), "{:?}", v.violations());
        // The money went back up the chain; Bob's late χ bought nothing.
        assert_eq!(
            outcome.customers[0].unwrap().outcome,
            CustomerOutcome::Refunded
        );
        assert_eq!(outcome.net_positions[1], Some(0));
    }

    #[test]
    fn withholding_alice_harms_nobody() {
        let setup = tb_setup(2);
        let (outcome, compliance) = run_with(&setup, 3, vec![Role::Alice], |role| {
            (role == Role::Alice).then(|| Box::new(InertProcess) as Box<dyn Process<PMsg>>)
        });
        let v = check_definition1(&outcome, &setup, &compliance);
        assert!(v.all_ok(), "{:?}", v.violations());
        // Nothing ever moved.
        for i in 1..=2 {
            assert_eq!(outcome.net_positions[i], Some(0));
        }
    }

    #[test]
    fn forging_chloe_steals_nothing() {
        let setup = tb_setup(3);
        let up_escrow = setup.topo.escrow_pid(0);
        let signer = setup.customer_signer(1).clone();
        let payment = setup.payment;
        let (outcome, compliance) = run_with(&setup, 4, vec![Role::Chloe(1)], move |role| {
            (role == Role::Chloe(1)).then(|| {
                Box::new(ForgingChloe::new(up_escrow, signer.clone(), payment))
                    as Box<dyn Process<PMsg>>
            })
        });
        let v = check_definition1(&outcome, &setup, &compliance);
        assert!(v.all_ok(), "{:?}", v.violations());
        // Alice refunded (chain stalled at the forger), forger gained 0.
        assert_eq!(
            outcome.customers[0].unwrap().outcome,
            CustomerOutcome::Refunded
        );
        assert_eq!(outcome.net_positions[1], Some(0), "forgery must not pay");
    }

    #[test]
    fn thieving_escrow_victim_documented_others_safe() {
        // e_1 steals. Its upstream customer (Chloe1) loses her stake —
        // she trusted e_1, exactly the paper's trust assumption — but
        // everyone else ends whole.
        let setup = tb_setup(3);
        let up = setup.topo.customer_pid(1);
        let signer = setup.escrow_signer(1).clone();
        let payment = setup.payment;
        let d1 = setup.schedule.d[1];
        let (outcome, compliance) = run_with(&setup, 5, vec![Role::Escrow(1)], move |role| {
            (role == Role::Escrow(1)).then(|| {
                Box::new(ThievingEscrow::new(up, signer.clone(), payment, 1, d1))
                    as Box<dyn Process<PMsg>>
            })
        });
        let v = check_definition1(&outcome, &setup, &compliance);
        assert!(v.all_ok(), "{:?}", v.violations());
        // CS3 for Chloe1 is Not-Applicable (her escrow is Byzantine), and
        // her position is unobservable — the thief controls the only book
        // that knows where her stake went:
        assert_eq!(v.cs3, PropCheck::NotApplicable);
        assert_eq!(
            outcome.net_positions[1], None,
            "victim's position is with the thief"
        );
        // What compliant processes do show: she is left hanging, never
        // refunded nor reimbursed.
        assert_eq!(
            outcome.customers[1].unwrap().outcome,
            CustomerOutcome::Pending,
            "the victim is left hanging"
        );
        // Alice was refunded by the honest e_0. Chloe2 never received a
        // P(a_1) promise from the thief, so she never risked her capital
        // (her aggregate position also touches the thief's book, hence
        // None). Bob, whose position involves only the honest e_2, is
        // exactly whole.
        assert_eq!(
            outcome.customers[0].unwrap().outcome,
            CustomerOutcome::Refunded
        );
        assert!(
            !outcome.customers[2].unwrap().sent_money,
            "Chloe2 never engaged"
        );
        assert_eq!(outcome.net_positions[3], Some(0));
    }

    #[test]
    fn crash_mid_protocol_at_every_customer() {
        // Fail-stop each customer shortly into the run: all remaining
        // compliant parties keep every guarantee.
        let setup = tb_setup(3);
        for victim in 0..=3usize {
            let role = match victim {
                0 => Role::Alice,
                3 => Role::Bob,
                i => Role::Chloe(i),
            };
            let (outcome, compliance) = run_with(&setup, 6, vec![role], |r| {
                (r == role).then(|| {
                    let inner = setup.default_process(role);
                    Box::new(CrashAfter::new(inner, SimDuration::from_millis(15)))
                        as Box<dyn Process<PMsg>>
                })
            });
            let v = check_definition1(&outcome, &setup, &compliance);
            assert!(v.all_ok(), "victim {role:?}: {:?}", v.violations());
        }
    }

    #[test]
    fn impersonated_abort_is_inert() {
        // A substituted Chloe forges an abort request in Alice's name. The
        // TM must ignore it: no χa on forged evidence. (With the forger
        // not staging money, no commit forms either.)
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 60), TmKind::Trusted, 31);
        let tm_pids = s.tm_pids();
        let signer = s.customer_signer(1).clone();
        let pki = s.pki.clone();
        let payment = s.payment;
        let mut eng = s.build_engine_with(
            Box::new(SyncNet::new(SimDuration::from_millis(5), 8)),
            Box::new(RandomOracle::seeded(7)),
            |role| {
                (role == Role::Chloe(1)).then(|| {
                    Box::new(ImpersonatingAborter::new(
                        tm_pids.clone(),
                        signer.clone(),
                        pki.clone(),
                        payment,
                        0, // pretends to be Alice
                    )) as Box<dyn Process<PMsg>>
                })
            },
            |_| None,
        );
        eng.run();
        let o = WeakOutcome::extract(&eng, &s);
        assert_eq!(o.verdict(), None, "forged abort must not produce χa: {o:?}");
        let v = check_definition2(&o, &Compliance::with_byzantine(vec![Role::Chloe(1)]), true);
        assert!(v.cc.ok() && v.es.ok(), "{:?}", v.violations());
    }
}
