//! Assembly and outcome extraction for weak-liveness protocol instances.

use crate::msg::PMsg;
use crate::timing::SyncParams;
use crate::topology::{ChainKeys, ChainTopology, Role, ValuePlan};
use crate::weak::participants::{Patience, WeakCustomer, WeakEscrow};
use crate::weak::tm::{Evidence, NotaryTm, TrustedTm};
use anta::clock::DriftClock;
use anta::engine::{Engine, EngineConfig};
use anta::net::NetModel;
use anta::oracle::Oracle;
use anta::process::{Pid, Process};
use anta::time::{SimDuration, SimTime};
use consensus::Config as ConsConfig;
use ledger::Ledger;
use std::sync::Arc;
use xcrypto::{Authority, KeyId, PaymentId, Pki, Signer, Verdict};

/// Which transaction manager to deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmKind {
    /// A single trusted external party.
    Trusted,
    /// A smart contract on a public chain log (same trust, plus a
    /// verifiable record).
    Contract,
    /// A committee of `k` notaries running consensus; tolerates
    /// `f = ⌊(k−1)/3⌋` unreliable members.
    Committee {
        /// Committee size.
        k: usize,
    },
}

/// One complete weak-protocol configuration.
pub struct WeakSetup {
    /// The Figure 1 chain topology.
    pub topo: ChainTopology,
    /// The value plan / patience plan, per context.
    pub plan: ValuePlan,
    /// The payment instance this belongs to.
    pub payment: PaymentId,
    /// Shared verification registry.
    pub pki: Arc<Pki>,
    /// Which transaction manager is deployed.
    pub tm_kind: TmKind,
    /// Who vouches for decision certificates.
    pub authority: Authority,
    /// Per-customer patience, index `0..=n`.
    pub patience: Vec<Patience>,
    /// Base consensus timeout (committee manager).
    pub cons_base_timeout: SimDuration,
    customers: Vec<Signer>,
    escrows: Vec<Signer>,
    tms: Vec<Signer>,
}

impl WeakSetup {
    /// Creates a setup with all customers fully patient.
    pub fn new(n: usize, plan: ValuePlan, tm_kind: TmKind, seed: u64) -> Self {
        assert_eq!(plan.hops(), n);
        let topo = ChainTopology::new(n);
        let keys = ChainKeys::generate(&topo, seed);
        let mut pki = keys.pki;
        let tm_count = match tm_kind {
            TmKind::Trusted | TmKind::Contract => 1,
            TmKind::Committee { k } => {
                assert!(k >= 1, "empty committee");
                k
            }
        };
        let tms: Vec<Signer> = (0..tm_count).map(|_| pki.register().1).collect();
        let authority = match tm_kind {
            TmKind::Trusted | TmKind::Contract => Authority::Single(tms[0].id()),
            TmKind::Committee { .. } => Authority::committee(tms.iter().map(|s| s.id()).collect()),
        };
        WeakSetup {
            topo,
            plan,
            payment: keys.payment,
            pki: Arc::new(pki),
            tm_kind,
            authority,
            patience: vec![Patience::patient(); n + 1],
            cons_base_timeout: SimDuration::from_millis(50),
            customers: keys.customers,
            escrows: keys.escrows,
            tms,
        }
    }

    /// Overrides one customer's patience.
    pub fn with_patience(mut self, customer: usize, p: Patience) -> Self {
        self.patience[customer] = p;
        self
    }

    /// Number of escrows.
    pub fn n(&self) -> usize {
        self.topo.n
    }

    /// Number of manager processes.
    pub fn tm_count(&self) -> usize {
        self.tms.len()
    }

    /// Engine pids of the manager processes.
    pub fn tm_pids(&self) -> Vec<Pid> {
        let base = self.topo.next_free_pid();
        (0..self.tm_count()).map(|i| base + i).collect()
    }

    /// Signer of customer `c_i` (for Byzantine strategies).
    pub fn customer_signer(&self, i: usize) -> &Signer {
        &self.customers[i]
    }

    /// Signer of manager process `i` — exposed so baseline variants (e.g.
    /// the Interledger atomic manager) can substitute a manager that
    /// still signs under the authority this setup's participants verify.
    pub fn tm_signer_for_tests(&self, i: usize) -> &Signer {
        self.tm_signer(i)
    }

    /// Signer of manager process `i` (the production-facing name;
    /// see [`WeakSetup::tm_signer_for_tests`]).
    pub fn tm_signer(&self, i: usize) -> &Signer {
        &self.tms[i]
    }

    /// Keys of all escrows, in index order.
    pub fn escrow_keys(&self) -> Vec<KeyId> {
        self.escrows.iter().map(|s| s.id()).collect()
    }

    /// Keys of all customers, in index order.
    pub fn customer_keys(&self) -> Vec<KeyId> {
        self.customers.iter().map(|s| s.id()).collect()
    }

    fn evidence(&self) -> Evidence {
        Evidence::new(self.payment, self.escrow_keys(), self.customer_keys())
    }

    /// Everyone who must learn the decision.
    fn participant_pids(&self) -> Vec<Pid> {
        (0..self.topo.participants()).collect()
    }

    /// The default (compliant) process for a chain role.
    pub fn default_process(&self, role: Role) -> Box<dyn Process<PMsg>> {
        let n = self.topo.n;
        let tm_pids = self.tm_pids();
        match role {
            Role::Alice | Role::Chloe(_) | Role::Bob => {
                let i = match role {
                    Role::Alice => 0,
                    Role::Chloe(i) => i,
                    Role::Bob => n,
                    Role::Escrow(_) => unreachable!(),
                };
                // Bob stages nothing; his escrow pid is unused.
                let own_escrow = if i < n {
                    self.topo.escrow_pid(i)
                } else {
                    self.topo.escrow_pid(n - 1)
                };
                let asset = if i < n {
                    self.plan.amounts[i]
                } else {
                    self.plan.amounts[n - 1]
                };
                Box::new(WeakCustomer::new(
                    i,
                    n,
                    own_escrow,
                    tm_pids,
                    self.customers[i].clone(),
                    self.pki.clone(),
                    self.payment,
                    asset,
                    self.authority.clone(),
                    self.patience[i],
                ))
            }
            Role::Escrow(i) => {
                let up_key = self.customers[i].id();
                let down_key = self.customers[i + 1].id();
                let mut book = Ledger::new();
                book.open_account(up_key).expect("fresh ledger");
                book.open_account(down_key).expect("fresh ledger");
                book.mint(up_key, self.plan.amounts[i])
                    .expect("fresh ledger");
                Box::new(WeakEscrow::new(
                    i,
                    self.topo.customer_pid(i),
                    self.topo.customer_pid(i + 1),
                    up_key,
                    down_key,
                    tm_pids,
                    self.escrows[i].clone(),
                    self.pki.clone(),
                    self.payment,
                    self.plan.amounts[i],
                    self.authority.clone(),
                    book,
                ))
            }
        }
    }

    /// The manager process(es).
    pub fn tm_processes(&self) -> Vec<Box<dyn Process<PMsg>>> {
        let participants = self.participant_pids();
        match self.tm_kind {
            TmKind::Trusted => vec![Box::new(TrustedTm::new(
                self.tms[0].clone(),
                self.pki.clone(),
                self.evidence(),
                participants,
            ))],
            TmKind::Contract => vec![Box::new(TrustedTm::contract(
                self.tms[0].clone(),
                self.pki.clone(),
                self.evidence(),
                participants,
            ))],
            TmKind::Committee { k } => {
                let members: Vec<KeyId> = self.tms.iter().map(|s| s.id()).collect();
                let f = k.saturating_sub(1) / 3;
                let pids = self.tm_pids();
                (0..k)
                    .map(|i| {
                        let peers: Vec<Pid> =
                            pids.iter().copied().filter(|&p| p != pids[i]).collect();
                        let cfg = ConsConfig {
                            instance: 0,
                            members: members.clone(),
                            f,
                            base_timeout: self.cons_base_timeout,
                            validity: Arc::new(|_: &Verdict| true),
                        };
                        Box::new(NotaryTm::new(
                            self.tms[i].clone(),
                            self.pki.clone(),
                            self.evidence(),
                            self.participant_pids(),
                            peers,
                            cfg,
                        )) as Box<dyn Process<PMsg>>
                    })
                    .collect()
            }
        }
    }

    /// The engine configuration this setup derives. Callers may tweak it
    /// (e.g. counters-only tracing or a tighter horizon for Monte-Carlo
    /// sweeps) and pass it to [`WeakSetup::build_engine_cfg`].
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            max_real_time: SimTime::from_secs(3_600),
            sigma_max: SyncParams::baseline().sigma,
            sigma_buckets: 4,
            ..Default::default()
        }
    }

    /// Builds the engine with compliant participants, substituting where
    /// `override_for` returns `Some`. Managers cannot be overridden here —
    /// unreliable notaries are modelled by substituting pids in the
    /// returned engine order via `override_tm`.
    pub fn build_engine_with(
        &self,
        net: Box<dyn NetModel<PMsg>>,
        oracle: Box<dyn Oracle>,
        override_for: impl FnMut(Role) -> Option<Box<dyn Process<PMsg>>>,
        override_tm: impl FnMut(usize) -> Option<Box<dyn Process<PMsg>>>,
    ) -> Engine<PMsg> {
        self.build_engine_cfg(net, oracle, self.engine_config(), override_for, override_tm)
    }

    /// Builds the engine under an explicit engine configuration (see
    /// [`WeakSetup::build_engine_with`] for the substitution semantics).
    pub fn build_engine_cfg(
        &self,
        net: Box<dyn NetModel<PMsg>>,
        oracle: Box<dyn Oracle>,
        cfg: EngineConfig,
        mut override_for: impl FnMut(Role) -> Option<Box<dyn Process<PMsg>>>,
        mut override_tm: impl FnMut(usize) -> Option<Box<dyn Process<PMsg>>>,
    ) -> Engine<PMsg> {
        let mut eng = Engine::new(net, oracle, cfg);
        for pid in 0..self.topo.participants() {
            let role = self.topo.role_of(pid).expect("chain pid");
            let proc = override_for(role).unwrap_or_else(|| self.default_process(role));
            eng.add_process(proc, DriftClock::perfect());
        }
        for (i, proc) in self.tm_processes().into_iter().enumerate() {
            let proc = override_tm(i).unwrap_or(proc);
            eng.add_process(proc, DriftClock::perfect());
        }
        eng
    }

    /// Builds the engine with compliant participants everywhere.
    pub fn build_engine(
        &self,
        net: Box<dyn NetModel<PMsg>>,
        oracle: Box<dyn Oracle>,
    ) -> Engine<PMsg> {
        self.build_engine_with(net, oracle, |_| None, |_| None)
    }
}

/// End-of-run extraction for the weak protocol.
#[derive(Debug, Clone)]
pub struct WeakOutcome {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Verdict each compliant customer accepted (outer `None`: substituted
    /// process; inner `None`: no verdict accepted).
    pub customer_verdicts: Vec<Option<Option<Verdict>>>,
    /// Same for escrows.
    pub escrow_verdicts: Vec<Option<Option<Verdict>>>,
    /// Per-escrow conservation audit.
    pub conservation: Vec<Option<bool>>,
    /// Net value change per customer (single-currency plans).
    pub net_positions: Vec<Option<i64>>,
    /// Which customers requested aborts.
    pub abort_requested: Vec<Option<bool>>,
    /// True iff Bob's account at `e_{n-1}` received the payment.
    pub bob_paid: bool,
    /// Certificate consistency: no two compliant participants accepted
    /// different verdicts.
    pub cc_ok: bool,
    /// All compliant customers halted (they terminate on the decision).
    pub all_customers_terminated: bool,
    /// For the contract manager: chain log integrity check result.
    pub chain_integrity: Option<bool>,
}

impl WeakOutcome {
    /// Extracts the outcome from a finished engine.
    pub fn extract(eng: &Engine<PMsg>, setup: &WeakSetup) -> Self {
        let n = setup.n();
        let topo = &setup.topo;
        let mut customer_verdicts = Vec::with_capacity(n + 1);
        let mut abort_requested = Vec::with_capacity(n + 1);
        let mut all_terminated = true;
        for i in 0..=n {
            let pid = topo.customer_pid(i);
            match eng.process_as::<WeakCustomer>(pid) {
                Some(c) => {
                    customer_verdicts.push(Some(c.verdict()));
                    abort_requested.push(Some(c.abort_requested()));
                    if eng.trace().halt_time(pid).is_none() {
                        all_terminated = false;
                    }
                }
                None => {
                    customer_verdicts.push(None);
                    abort_requested.push(None);
                }
            }
        }
        let mut escrow_verdicts = Vec::with_capacity(n);
        let mut conservation = Vec::with_capacity(n);
        for i in 0..n {
            match eng.process_as::<WeakEscrow>(topo.escrow_pid(i)) {
                Some(e) => {
                    escrow_verdicts.push(Some(e.verdict()));
                    conservation.push(Some(e.ledger().check_conservation().is_ok()));
                }
                None => {
                    escrow_verdicts.push(None);
                    conservation.push(None);
                }
            }
        }
        // Net positions, as in the time-bounded scenario.
        let mut net_positions = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let key = setup.customers[i].id();
            let mut known = true;
            let mut worth: i64 = 0;
            if i < n {
                match eng.process_as::<WeakEscrow>(topo.escrow_pid(i)) {
                    Some(e) => {
                        let cur = setup.plan.amounts[i].currency;
                        worth += e.ledger().balance(key, cur) as i64;
                        worth -= setup.plan.amounts[i].amount as i64;
                    }
                    None => known = false,
                }
            }
            if i > 0 {
                match eng.process_as::<WeakEscrow>(topo.escrow_pid(i - 1)) {
                    Some(e) => {
                        let cur = setup.plan.amounts[i - 1].currency;
                        worth += e.ledger().balance(key, cur) as i64;
                    }
                    None => known = false,
                }
            }
            net_positions.push(known.then_some(worth));
        }
        let bob_paid = eng
            .process_as::<WeakEscrow>(topo.escrow_pid(n - 1))
            .map(|e| {
                e.ledger()
                    .balance(setup.customers[n].id(), setup.plan.amounts[n - 1].currency)
                    == setup.plan.amounts[n - 1].amount
            })
            .unwrap_or(false);
        // CC: gather every accepted verdict; all must agree.
        let mut verdicts: Vec<Verdict> = customer_verdicts
            .iter()
            .flatten()
            .flatten()
            .copied()
            .chain(escrow_verdicts.iter().flatten().flatten().copied())
            .collect();
        verdicts.dedup();
        verdicts.sort_by_key(|v| matches!(v, Verdict::Abort));
        verdicts.dedup();
        let cc_ok = verdicts.len() <= 1;
        // Contract chain integrity.
        let chain_integrity = setup.tm_pids().first().and_then(|&pid| {
            eng.process_as::<TrustedTm>(pid)
                .and_then(|tm| tm.chain())
                .map(|c| c.verify_integrity().is_ok())
        });
        WeakOutcome {
            n,
            customer_verdicts,
            escrow_verdicts,
            conservation,
            net_positions,
            abort_requested,
            bob_paid,
            cc_ok,
            all_customers_terminated: all_terminated,
            chain_integrity,
        }
    }

    /// The single verdict of the run, if any compliant participant
    /// accepted one.
    pub fn verdict(&self) -> Option<Verdict> {
        self.customer_verdicts
            .iter()
            .flatten()
            .flatten()
            .copied()
            .next()
            .or_else(|| {
                self.escrow_verdicts
                    .iter()
                    .flatten()
                    .flatten()
                    .copied()
                    .next()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anta::net::{PartialSyncNet, SyncNet};
    use anta::oracle::RandomOracle;

    fn run(setup: &WeakSetup, seed: u64) -> WeakOutcome {
        let mut eng = setup.build_engine(
            Box::new(SyncNet::new(SimDuration::from_millis(5), 8)),
            Box::new(RandomOracle::seeded(seed)),
        );
        eng.run();
        WeakOutcome::extract(&eng, setup)
    }

    #[test]
    fn trusted_tm_all_patient_commits() {
        let s = WeakSetup::new(3, ValuePlan::uniform(3, 100), TmKind::Trusted, 1);
        let o = run(&s, 1);
        assert_eq!(o.verdict(), Some(Verdict::Commit), "{o:?}");
        assert!(o.bob_paid);
        assert!(o.cc_ok);
        assert!(o.all_customers_terminated);
        assert!(o.conservation.iter().all(|c| *c == Some(true)));
        assert_eq!(
            o.net_positions,
            vec![Some(-100), Some(0), Some(0), Some(100)]
        );
    }

    #[test]
    fn impatient_alice_aborts_safely() {
        // Alice aborts before even staging money.
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 50), TmKind::Trusted, 2).with_patience(
            0,
            Patience {
                act_at: None,
                abort_at: Some(SimDuration::from_millis(1)),
            },
        );
        let o = run(&s, 2);
        assert_eq!(o.verdict(), Some(Verdict::Abort), "{o:?}");
        assert!(!o.bob_paid);
        assert!(o.cc_ok);
        // Nobody lost anything.
        for (i, npos) in o.net_positions.iter().enumerate() {
            assert_eq!(*npos, Some(0), "customer {i} must be whole");
        }
        assert!(
            o.all_customers_terminated,
            "abort certificate terminates everyone"
        );
    }

    #[test]
    fn impatient_after_staging_gets_refund() {
        // Chloe stages money, then loses patience while Bob never accepts.
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 50), TmKind::Trusted, 3)
            .with_patience(2, Patience::absent()) // Bob never accepts
            .with_patience(1, Patience::until(SimDuration::from_millis(200)));
        let o = run(&s, 3);
        assert_eq!(o.verdict(), Some(Verdict::Abort));
        assert_eq!(o.net_positions[1], Some(0), "Chloe refunded after abort");
        assert_eq!(o.net_positions[0], Some(0), "Alice refunded after abort");
        assert!(o.cc_ok);
    }

    #[test]
    fn contract_tm_produces_verifiable_log() {
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 10), TmKind::Contract, 4);
        let o = run(&s, 4);
        assert_eq!(o.verdict(), Some(Verdict::Commit));
        assert_eq!(o.chain_integrity, Some(true), "chain log must verify");
    }

    #[test]
    fn committee_tm_all_honest_commits() {
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 75), TmKind::Committee { k: 4 }, 5);
        let o = run(&s, 5);
        assert_eq!(o.verdict(), Some(Verdict::Commit), "{o:?}");
        assert!(o.bob_paid);
        assert!(o.cc_ok);
        assert!(o.all_customers_terminated);
    }

    #[test]
    fn committee_tm_with_silent_notary_still_commits() {
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 75), TmKind::Committee { k: 4 }, 6);
        let mut eng = s.build_engine_with(
            Box::new(SyncNet::new(SimDuration::from_millis(5), 8)),
            Box::new(RandomOracle::seeded(6)),
            |_| None,
            // Notary 3 has crashed.
            |i| (i == 3).then(|| Box::new(anta::process::InertProcess) as Box<dyn Process<PMsg>>),
        );
        eng.run();
        let o = WeakOutcome::extract(&eng, &s);
        assert_eq!(o.verdict(), Some(Verdict::Commit), "{o:?}");
        assert!(o.bob_paid);
        assert!(o.cc_ok);
    }

    #[test]
    fn committee_tm_abort_race_keeps_cc() {
        // Bob accepts but Alice aborts at nearly the same moment: whatever
        // the committee decides, everyone must agree (CC) and money must be
        // conserved.
        for seed in 0..10u64 {
            let s = WeakSetup::new(2, ValuePlan::uniform(2, 75), TmKind::Committee { k: 4 }, 7)
                .with_patience(
                    0,
                    Patience {
                        act_at: Some(SimDuration::ZERO),
                        abort_at: Some(SimDuration::from_millis(30)),
                    },
                );
            let o = run(&s, seed);
            assert!(o.cc_ok, "seed {seed}: CC violated: {o:?}");
            assert!(o.verdict().is_some(), "seed {seed}: no decision");
            assert!(o.conservation.iter().all(|c| *c == Some(true)));
            match o.verdict().unwrap() {
                Verdict::Commit => assert!(o.bob_paid, "seed {seed}"),
                Verdict::Abort => {
                    assert!(!o.bob_paid, "seed {seed}");
                    assert!(
                        o.net_positions.iter().all(|p| *p == Some(0)),
                        "seed {seed}: {o:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_synchrony_still_decides() {
        // The whole point of Theorem 3: the weak protocol needs no
        // synchrony bound. A GST adversary delays everything pre-GST.
        let s = WeakSetup::new(2, ValuePlan::uniform(2, 40), TmKind::Trusted, 8);
        let mut eng = s.build_engine(
            Box::new(PartialSyncNet::new(
                SimTime::from_millis(500),
                SimDuration::from_millis(5),
            )),
            Box::new(RandomOracle::seeded(8)),
        );
        eng.run();
        let o = WeakOutcome::extract(&eng, &s);
        assert_eq!(o.verdict(), Some(Verdict::Commit));
        assert!(o.bob_paid);

        let s2 = WeakSetup::new(2, ValuePlan::uniform(2, 40), TmKind::Committee { k: 4 }, 9);
        let mut eng2 = s2.build_engine(
            Box::new(PartialSyncNet::new(
                SimTime::from_millis(500),
                SimDuration::from_millis(5),
            )),
            Box::new(RandomOracle::seeded(9)),
        );
        eng2.run();
        let o2 = WeakOutcome::extract(&eng2, &s2);
        assert_eq!(o2.verdict(), Some(Verdict::Commit), "{o2:?}");
        assert!(o2.cc_ok);
    }

    #[test]
    fn commission_preserved_in_weak_commit() {
        let s = WeakSetup::new(
            3,
            ValuePlan::with_commission(3, 100, 10),
            TmKind::Trusted,
            10,
        );
        let o = run(&s, 10);
        assert_eq!(o.verdict(), Some(Verdict::Commit));
        assert_eq!(
            o.net_positions,
            vec![Some(-100), Some(10), Some(10), Some(80)]
        );
    }
}
