//! The weak-liveness cross-chain payment protocol (Definition 2,
//! Theorem 3).
//!
//! Solvable under partial synchrony with Byzantine failures: no step
//! depends on a wall-clock deadline; instead an external transaction
//! manager issues a single commit (χc) or abort (χa) certificate, and
//! every customer may lose patience at any time without risking her funds.
//!
//! * [`participants`] — customers with patience policies, escrows that
//!   settle on certificates, and the certificate-share collector;
//! * [`tm`] — the three manager instantiations: trusted party, smart
//!   contract on a public log, notary committee over consensus;
//! * [`scenario`] — assembly and outcome extraction.

pub mod participants;
pub mod scenario;
pub mod tm;

pub use participants::{CertCollector, Patience, WeakCustomer, WeakEscrow};
pub use scenario::{TmKind, WeakOutcome, WeakSetup};
pub use tm::{Evidence, NotaryTm, TrustedTm};
