//! The transaction manager of the weak-liveness protocol — all three
//! instantiations the paper lists: *"a single external party trusted by
//! all, or a smart contract running on a permissionless blockchain shared
//! by every customer. It can also be a collection of notaries … of which
//! less than one-third is assumed to be unreliable … running a consensus
//! algorithm for partial synchrony."*
//!
//! All variants implement the same decision rule over *signed evidence*:
//!
//! * **χc (commit)** — once all `n` lock reports (one per escrow) and
//!   Bob's signed acceptance are verified;
//! * **χa (abort)** — as soon as any customer's signed abort request
//!   arrives before a commit;
//! * at most one certificate is ever issued (property **CC**).

use crate::msg::{PMsg, TmInput, TmInputKind};
use anta::process::{Ctx, Pid, Process, TimerId};
use consensus::{Config as ConsConfig, ConsMsg, NotaryCore, Output as ConsOutput};
use ledger::SimChain;
use std::sync::Arc;
use xcrypto::{DecisionCert, KeyId, PaymentId, Pki, Receipt, Signer, Verdict};

/// Verified evidence gathered from the participants.
#[derive(Debug, Clone)]
pub struct Evidence {
    payment: PaymentId,
    escrow_keys: Vec<KeyId>,
    customer_keys: Vec<KeyId>,
    bob_key: KeyId,
    locks: Vec<bool>,
    accept: bool,
    abort: bool,
}

impl Evidence {
    /// Fresh evidence tracker for a chain of `escrow_keys.len()` hops.
    pub fn new(payment: PaymentId, escrow_keys: Vec<KeyId>, customer_keys: Vec<KeyId>) -> Self {
        let bob_key = *customer_keys.last().expect("n+1 customers");
        let n = escrow_keys.len();
        Evidence {
            payment,
            escrow_keys,
            customer_keys,
            bob_key,
            locks: vec![false; n],
            accept: false,
            abort: false,
        }
    }

    /// The payment this evidence is about.
    pub fn payment(&self) -> PaymentId {
        self.payment
    }

    /// Ingests a signed TM input; ignores anything that fails verification.
    pub fn ingest_input(&mut self, input: &TmInput, pki: &Pki) {
        if input.payment != self.payment {
            return;
        }
        match input.kind {
            TmInputKind::Locked => {
                let i = input.index as usize;
                if i < self.escrow_keys.len() && input.verify(pki, self.escrow_keys[i]) {
                    self.locks[i] = true;
                }
            }
            TmInputKind::AbortRequest => {
                let i = input.index as usize;
                if i < self.customer_keys.len() && input.verify(pki, self.customer_keys[i]) {
                    self.abort = true;
                }
            }
        }
    }

    /// Ingests Bob's acceptance.
    pub fn ingest_accept(&mut self, chi: &Receipt, pki: &Pki) {
        if chi.payment == self.payment && chi.verify(pki, self.bob_key) {
            self.accept = true;
        }
    }

    /// All locks plus Bob's acceptance.
    pub fn commit_ready(&self) -> bool {
        self.accept && self.locks.iter().all(|&l| l)
    }

    /// Some verified abort request exists.
    pub fn abort_ready(&self) -> bool {
        self.abort
    }

    /// The verdict this evidence justifies right now, preferring the abort
    /// (a customer already asked out) — either order would be correct.
    pub fn verdict(&self) -> Option<Verdict> {
        if self.abort_ready() {
            Some(Verdict::Abort)
        } else if self.commit_ready() {
            Some(Verdict::Commit)
        } else {
            None
        }
    }
}

/// A single trusted transaction manager.
#[derive(Debug, Clone)]
pub struct TrustedTm {
    signer: Signer,
    pki: Arc<Pki>,
    evidence: Evidence,
    /// Everyone who must learn the decision (customers + escrows).
    participants: Vec<Pid>,
    decided: Option<Verdict>,
    /// Optional hash-linked public log (the "smart contract on a
    /// blockchain" variant records everything here).
    chain: Option<SimChain>,
}

impl TrustedTm {
    /// A plain trusted party.
    pub fn new(signer: Signer, pki: Arc<Pki>, evidence: Evidence, participants: Vec<Pid>) -> Self {
        TrustedTm {
            signer,
            pki,
            evidence,
            participants,
            decided: None,
            chain: None,
        }
    }

    /// The smart-contract variant: identical logic, but every input and
    /// the decision are published on a verifiable chain log.
    pub fn contract(
        signer: Signer,
        pki: Arc<Pki>,
        evidence: Evidence,
        participants: Vec<Pid>,
    ) -> Self {
        TrustedTm {
            signer,
            pki,
            evidence,
            participants,
            decided: None,
            chain: Some(SimChain::new()),
        }
    }

    /// The decision, if made.
    pub fn decided(&self) -> Option<Verdict> {
        self.decided
    }

    /// The contract's public log (contract variant only).
    pub fn chain(&self) -> Option<&SimChain> {
        self.chain.as_ref()
    }

    fn record(&mut self, payload: Vec<u8>) {
        if let Some(chain) = &mut self.chain {
            chain.append(payload);
        }
    }

    fn try_decide(&mut self, ctx: &mut Ctx<PMsg>) {
        if self.decided.is_some() {
            return;
        }
        let Some(v) = self.evidence.verdict() else {
            return;
        };
        self.decided = Some(v);
        let cert = DecisionCert::issue_single(&self.signer, self.evidence.payment, v);
        self.record(DecisionCert::payload(&self.evidence.payment, v));
        ctx.mark(
            match v {
                Verdict::Commit => "tm_commit",
                Verdict::Abort => "tm_abort",
            },
            0,
        );
        for &p in &self.participants {
            ctx.send(p, PMsg::Decision(cert.clone()));
        }
        ctx.halt();
    }
}

impl Process<PMsg> for TrustedTm {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, _from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        match msg {
            PMsg::TmInput(input) => {
                self.evidence.ingest_input(&input, &self.pki);
                self.record(vec![
                    match input.kind {
                        TmInputKind::Locked => 1u8,
                        TmInputKind::AbortRequest => 2,
                    },
                    input.index as u8,
                ]);
            }
            PMsg::Accept(chi) => {
                self.evidence.ingest_accept(&chi, &self.pki);
                self.record(vec![3u8]);
            }
            _ => return,
        }
        self.try_decide(ctx);
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

/// One member of the notary-committee transaction manager. Gathers the
/// same evidence as [`TrustedTm`]; once its evidence justifies a verdict it
/// activates an embedded [`NotaryCore`] consensus instance with that
/// verdict as input. When consensus decides, the notary signs a decision
/// certificate *share*; participants accept once `2f+1` distinct shares
/// verify (see `CertCollector`).
#[derive(Debug, Clone)]
pub struct NotaryTm {
    signer: Signer,
    pki: Arc<Pki>,
    evidence: Evidence,
    participants: Vec<Pid>,
    /// Other notaries (engine pids).
    peers: Vec<Pid>,
    cons_cfg: ConsConfig<Verdict>,
    core: Option<NotaryCore<Verdict>>,
    /// Consensus traffic received before activation.
    buffered: Vec<ConsMsg<Verdict>>,
    /// Proposals withheld pending local evidence (validity gating).
    pending_props: Vec<ConsMsg<Verdict>>,
    decided: Option<Verdict>,
}

impl NotaryTm {
    /// Builds one notary of the committee.
    pub fn new(
        signer: Signer,
        pki: Arc<Pki>,
        evidence: Evidence,
        participants: Vec<Pid>,
        peers: Vec<Pid>,
        cons_cfg: ConsConfig<Verdict>,
    ) -> Self {
        NotaryTm {
            signer,
            pki,
            evidence,
            participants,
            peers,
            cons_cfg,
            core: None,
            buffered: Vec::new(),
            pending_props: Vec::new(),
            decided: None,
        }
    }

    /// The verdict this notary's consensus instance decided, if any.
    pub fn decided(&self) -> Option<Verdict> {
        self.decided
    }

    fn maybe_activate(&mut self, ctx: &mut Ctx<PMsg>) {
        if self.core.is_some() {
            return;
        }
        let Some(input) = self.evidence.verdict() else {
            return;
        };
        let mut core = NotaryCore::new(
            self.cons_cfg.clone(),
            self.signer.clone(),
            self.pki.clone(),
            input,
        );
        let mut outputs = core.start();
        for msg in std::mem::take(&mut self.buffered) {
            if Self::admissible_static(&self.evidence, &msg) {
                outputs.extend(core.on_message(msg));
            } else {
                self.pending_props.push(msg);
            }
        }
        self.core = Some(core);
        self.apply(outputs, ctx);
    }

    fn admissible_static(evidence: &Evidence, msg: &ConsMsg<Verdict>) -> bool {
        match msg {
            ConsMsg::Propose { value, pol, .. } => {
                pol.is_some()
                    || match value {
                        Verdict::Commit => evidence.commit_ready(),
                        Verdict::Abort => evidence.abort_ready(),
                    }
            }
            _ => true,
        }
    }

    /// Re-offers gated proposals after evidence improved.
    fn retry_pending(&mut self, ctx: &mut Ctx<PMsg>) {
        if self.core.is_none() || self.pending_props.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_props);
        let mut outputs = Vec::new();
        for msg in pending {
            if Self::admissible_static(&self.evidence, &msg) {
                if let Some(core) = self.core.as_mut() {
                    outputs.extend(core.on_message(msg));
                }
            } else {
                self.pending_props.push(msg);
            }
        }
        self.apply(outputs, ctx);
    }

    fn apply(&mut self, outputs: Vec<ConsOutput<Verdict>>, ctx: &mut Ctx<PMsg>) {
        for o in outputs {
            match o {
                ConsOutput::Broadcast(m) => {
                    for &p in &self.peers {
                        ctx.send(p, PMsg::Cons(m.clone()));
                    }
                }
                ConsOutput::Schedule { token, after } => ctx.set_timer_after(token, after),
                ConsOutput::Decide { value, .. } => {
                    if self.decided.is_none() {
                        self.decided = Some(value);
                        ctx.mark(
                            match value {
                                Verdict::Commit => "notary_commit",
                                Verdict::Abort => "notary_abort",
                            },
                            0,
                        );
                        // Sign a certificate share for the participants.
                        let payload = DecisionCert::payload(&self.evidence.payment, value);
                        let share = DecisionCert::assemble(
                            self.evidence.payment,
                            value,
                            vec![self.signer.sign(xcrypto::cert::DOM_DECISION, &payload)],
                        );
                        for &p in &self.participants {
                            ctx.send(p, PMsg::Decision(share.clone()));
                        }
                    }
                }
            }
        }
    }
}

impl Process<PMsg> for NotaryTm {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, _from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        match msg {
            PMsg::TmInput(input) => {
                self.evidence.ingest_input(&input, &self.pki);
                self.maybe_activate(ctx);
                self.retry_pending(ctx);
            }
            PMsg::Accept(chi) => {
                self.evidence.ingest_accept(&chi, &self.pki);
                self.maybe_activate(ctx);
                self.retry_pending(ctx);
            }
            PMsg::Cons(m) => match self.core.as_mut() {
                Some(core) => {
                    if Self::admissible_static(&self.evidence, &m) {
                        let out = core.on_message(m);
                        self.apply(out, ctx);
                    } else {
                        self.pending_props.push(m);
                    }
                }
                None => self.buffered.push(m),
            },
            _ => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<PMsg>) {
        if let Some(core) = self.core.as_mut() {
            let out = core.on_timeout(id);
            self.apply(out, ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence_rig() -> (Pki, Vec<Signer>, Vec<Signer>, Evidence) {
        let mut pki = Pki::new(4);
        let customers: Vec<Signer> = pki.register_many(3).into_iter().map(|(_, s)| s).collect();
        let escrows: Vec<Signer> = pki.register_many(2).into_iter().map(|(_, s)| s).collect();
        let payment = PaymentId::derive(1, &customers.iter().map(|s| s.id()).collect::<Vec<_>>());
        let ev = Evidence::new(
            payment,
            escrows.iter().map(|s| s.id()).collect(),
            customers.iter().map(|s| s.id()).collect(),
        );
        (pki, customers, escrows, ev)
    }

    #[test]
    fn evidence_commit_requires_all_locks_and_accept() {
        let (pki, customers, escrows, mut ev) = evidence_rig();
        assert_eq!(ev.verdict(), None);
        let payment = ev.payment();
        ev.ingest_input(
            &TmInput::issue(&escrows[0], TmInputKind::Locked, payment, 0),
            &pki,
        );
        assert!(!ev.commit_ready());
        ev.ingest_input(
            &TmInput::issue(&escrows[1], TmInputKind::Locked, payment, 1),
            &pki,
        );
        assert!(!ev.commit_ready(), "needs Bob's acceptance too");
        ev.ingest_accept(&Receipt::issue(&customers[2], payment), &pki);
        assert!(ev.commit_ready());
        assert_eq!(ev.verdict(), Some(Verdict::Commit));
    }

    #[test]
    fn evidence_rejects_forged_inputs() {
        let (pki, customers, escrows, mut ev) = evidence_rig();
        let payment = ev.payment();
        // A customer signing a Locked notice is not an escrow.
        ev.ingest_input(
            &TmInput::issue(&customers[0], TmInputKind::Locked, payment, 0),
            &pki,
        );
        assert!(!ev.commit_ready());
        // Wrong escrow index.
        ev.ingest_input(
            &TmInput::issue(&escrows[1], TmInputKind::Locked, payment, 0),
            &pki,
        );
        assert_eq!(ev.verdict(), None);
        // Accept signed by a non-Bob key.
        ev.ingest_accept(&Receipt::issue(&customers[0], payment), &pki);
        assert!(!ev.accept);
        // Out-of-range indices are ignored.
        ev.ingest_input(
            &TmInput::issue(&escrows[0], TmInputKind::Locked, payment, 99),
            &pki,
        );
        assert_eq!(ev.verdict(), None);
    }

    #[test]
    fn evidence_abort_from_any_customer() {
        let (pki, customers, _escrows, mut ev) = evidence_rig();
        let payment = ev.payment();
        ev.ingest_input(
            &TmInput::issue(&customers[1], TmInputKind::AbortRequest, payment, 1),
            &pki,
        );
        assert!(ev.abort_ready());
        assert_eq!(ev.verdict(), Some(Verdict::Abort));
    }

    #[test]
    fn evidence_prefers_abort_when_both_ready() {
        let (pki, customers, escrows, mut ev) = evidence_rig();
        let payment = ev.payment();
        ev.ingest_input(
            &TmInput::issue(&escrows[0], TmInputKind::Locked, payment, 0),
            &pki,
        );
        ev.ingest_input(
            &TmInput::issue(&escrows[1], TmInputKind::Locked, payment, 1),
            &pki,
        );
        ev.ingest_accept(&Receipt::issue(&customers[2], payment), &pki);
        ev.ingest_input(
            &TmInput::issue(&customers[0], TmInputKind::AbortRequest, payment, 0),
            &pki,
        );
        assert_eq!(ev.verdict(), Some(Verdict::Abort));
    }
}
