//! Customers and escrows of the weak-liveness protocol (Theorem 3).
//!
//! Protocol shape (reconstructed from §3's description; DESIGN.md §5):
//!
//! 1. every customer *may wait as long as she likes* (her patience) before
//!    staging money: Alice and each Chloe eventually lock their hop's value
//!    at their escrow; Bob eventually sends his signed acceptance χ to the
//!    transaction manager;
//! 2. each escrow, upon locking, reports `Locked(i)` (signed) to the
//!    manager;
//! 3. the manager issues **χc** once it holds all `n` lock reports plus
//!    Bob's acceptance, or **χa** as soon as any customer's signed
//!    `AbortRequest` arrives first — never both (property CC);
//! 4. escrows settle on the certificate: release downstream on χc, refund
//!    upstream on χa. Certificates are transferable: χc is Alice's proof
//!    that Bob has been paid (CS1'), χa is Bob's proof that the payment is
//!    off (CS2').
//!
//! Any customer may lose patience at any time *before* a decision without
//! risking her funds — the abort path refunds every locked hop. This is
//! exactly the weakening that makes the problem solvable under partial
//! synchrony: no step depends on a wall-clock deadline.

use crate::msg::{PMsg, TmInput, TmInputKind};
use anta::process::{Ctx, Pid, Process, TimerId};
use anta::time::SimDuration;
use ledger::{Asset, DealId, Ledger};
use std::sync::Arc;
use xcrypto::{
    Authority, DecisionCert, KeyId, PaymentId, Pki, Receipt, Signature, Signer, Verdict,
};

/// Accumulates decision-certificate shares until one verdict verifies
/// against the authority (a single-signer authority verifies on the first
/// valid share; a committee authority once `2f+1` distinct notary
/// signatures have arrived).
#[derive(Debug, Clone, Default)]
pub struct CertCollector {
    commit: Vec<Signature>,
    abort: Vec<Signature>,
    accepted: Option<Verdict>,
}

impl CertCollector {
    /// Offers a received certificate (share); returns the verdict when the
    /// accumulated evidence first verifies.
    pub fn offer(
        &mut self,
        cert: &DecisionCert,
        payment: PaymentId,
        pki: &Pki,
        authority: &Authority,
    ) -> Option<Verdict> {
        if self.accepted.is_some() || cert.payment != payment {
            return None;
        }
        let bucket = match cert.verdict {
            Verdict::Commit => &mut self.commit,
            Verdict::Abort => &mut self.abort,
        };
        for sig in &cert.sigs {
            if !bucket.iter().any(|s| s.signer == sig.signer) {
                bucket.push(*sig);
            }
        }
        let assembled = DecisionCert::assemble(payment, cert.verdict, bucket.clone());
        if assembled.verify(pki, authority) {
            self.accepted = Some(cert.verdict);
            self.accepted
        } else {
            None
        }
    }

    /// The verdict this participant accepted, if any.
    pub fn accepted(&self) -> Option<Verdict> {
        self.accepted
    }
}

/// Patience policy of one customer, in local time from her start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patience {
    /// When to stage money (Alice/Chloe) or send acceptance (Bob).
    /// `None`: never (models a withholding/crashed customer).
    pub act_at: Option<SimDuration>,
    /// When to lose patience and request an abort if still unresolved.
    /// `None`: infinitely patient.
    pub abort_at: Option<SimDuration>,
}

impl Patience {
    /// Acts immediately, never aborts — the fully patient customer.
    pub fn patient() -> Self {
        Patience {
            act_at: Some(SimDuration::ZERO),
            abort_at: None,
        }
    }

    /// Acts immediately but aborts if unresolved by `after`.
    pub fn until(after: SimDuration) -> Self {
        Patience {
            act_at: Some(SimDuration::ZERO),
            abort_at: Some(after),
        }
    }

    /// Never acts (crash-by-omission), never aborts.
    pub fn absent() -> Self {
        Patience {
            act_at: None,
            abort_at: None,
        }
    }
}

const TIMER_ACT: TimerId = 1;
const TIMER_ABORT: TimerId = 2;

/// A customer in the weak protocol (role-dispatched: Alice/Chloe stage
/// money, Bob sends acceptance).
#[derive(Debug, Clone)]
pub struct WeakCustomer {
    /// Customer index `0..=n` (`n` ⇒ Bob).
    index: usize,
    n: usize,
    /// Escrow to stage money at (`e_i` for `c_i`, `i < n`; unused for Bob).
    own_escrow: Pid,
    /// All transaction-manager pids (1 for single TM, k for a committee).
    tm_pids: Vec<Pid>,
    signer: Signer,
    pki: Arc<Pki>,
    payment: PaymentId,
    asset: Asset,
    authority: Authority,
    patience: Patience,
    acted: bool,
    abort_requested: bool,
    certs: CertCollector,
}

impl WeakCustomer {
    /// Builds customer `c_index` of a chain with `n` escrows.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        n: usize,
        own_escrow: Pid,
        tm_pids: Vec<Pid>,
        signer: Signer,
        pki: Arc<Pki>,
        payment: PaymentId,
        asset: Asset,
        authority: Authority,
        patience: Patience,
    ) -> Self {
        WeakCustomer {
            index,
            n,
            own_escrow,
            tm_pids,
            signer,
            pki,
            payment,
            asset,
            authority,
            patience,
            acted: false,
            abort_requested: false,
            certs: CertCollector::default(),
        }
    }

    fn is_bob(&self) -> bool {
        self.index == self.n
    }

    /// The verdict this customer accepted (χc or χa), if any.
    pub fn verdict(&self) -> Option<Verdict> {
        self.certs.accepted()
    }

    /// Whether this customer staged money / sent acceptance.
    pub fn acted(&self) -> bool {
        self.acted
    }

    /// Whether this customer requested an abort.
    pub fn abort_requested(&self) -> bool {
        self.abort_requested
    }

    fn act(&mut self, ctx: &mut Ctx<PMsg>) {
        if self.acted || self.certs.accepted().is_some() {
            return;
        }
        self.acted = true;
        if self.is_bob() {
            let chi = Receipt::issue(&self.signer, self.payment);
            for &tm in &self.tm_pids {
                ctx.send(tm, PMsg::Accept(chi));
            }
            ctx.mark("weak_bob_accept", 0);
        } else {
            ctx.send(
                self.own_escrow,
                PMsg::Money {
                    payment: self.payment,
                    asset: self.asset,
                },
            );
            ctx.mark("weak_staged", self.index as i64);
        }
    }
}

impl Process<PMsg> for WeakCustomer {
    fn on_start(&mut self, ctx: &mut Ctx<PMsg>) {
        if let Some(at) = self.patience.act_at {
            ctx.set_timer_after(TIMER_ACT, at);
        }
        if let Some(at) = self.patience.abort_at {
            ctx.set_timer_after(TIMER_ABORT, at);
        }
    }

    fn on_message(&mut self, _from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        if let PMsg::Decision(cert) = msg {
            if let Some(v) = self
                .certs
                .offer(&cert, self.payment, &self.pki, &self.authority)
            {
                ctx.mark(
                    match v {
                        Verdict::Commit => "weak_customer_commit",
                        Verdict::Abort => "weak_customer_abort",
                    },
                    self.index as i64,
                );
                ctx.halt();
            }
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<PMsg>) {
        match id {
            TIMER_ACT => self.act(ctx),
            TIMER_ABORT if self.certs.accepted().is_none() && !self.abort_requested => {
                self.abort_requested = true;
                let req = TmInput::issue(
                    &self.signer,
                    TmInputKind::AbortRequest,
                    self.payment,
                    self.index as u64,
                );
                for &tm in &self.tm_pids {
                    ctx.send(tm, PMsg::TmInput(req));
                }
                ctx.mark("weak_abort_requested", self.index as i64);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

/// An escrow in the weak protocol: locks on the customer's instruction,
/// reports to the manager, settles on the certificate.
#[derive(Debug, Clone)]
pub struct WeakEscrow {
    index: usize,
    up: Pid,
    down: Pid,
    up_key: KeyId,
    down_key: KeyId,
    tm_pids: Vec<Pid>,
    signer: Signer,
    pki: Arc<Pki>,
    payment: PaymentId,
    asset: Asset,
    authority: Authority,
    ledger: Ledger,
    deal: Option<DealId>,
    certs: CertCollector,
}

impl WeakEscrow {
    /// Builds weak escrow `e_i`. The ledger must hold both customer
    /// accounts with the upstream one funded.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        up: Pid,
        down: Pid,
        up_key: KeyId,
        down_key: KeyId,
        tm_pids: Vec<Pid>,
        signer: Signer,
        pki: Arc<Pki>,
        payment: PaymentId,
        asset: Asset,
        authority: Authority,
        ledger: Ledger,
    ) -> Self {
        WeakEscrow {
            index,
            up,
            down,
            up_key,
            down_key,
            tm_pids,
            signer,
            pki,
            payment,
            asset,
            authority,
            ledger,
            deal: None,
            certs: CertCollector::default(),
        }
    }

    /// The escrow's book.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The verdict this escrow settled on, if any.
    pub fn verdict(&self) -> Option<Verdict> {
        self.certs.accepted()
    }

    /// Whether value is currently locked here.
    pub fn locked(&self) -> bool {
        self.deal.is_some()
            && self
                .deal
                .and_then(|d| self.ledger.deal(d))
                .is_some_and(|d| d.state == ledger::DealState::Locked)
    }
}

impl Process<PMsg> for WeakEscrow {
    fn on_start(&mut self, _ctx: &mut Ctx<PMsg>) {}

    fn on_message(&mut self, from: Pid, msg: PMsg, ctx: &mut Ctx<PMsg>) {
        match msg {
            PMsg::Money { payment, asset } => {
                if from != self.up
                    || payment != self.payment
                    || asset != self.asset
                    || self.deal.is_some()
                    || self.certs.accepted().is_some()
                {
                    return;
                }
                match self.ledger.lock(self.up_key, self.down_key, asset) {
                    Ok(deal) => {
                        self.deal = Some(deal);
                        ctx.mark("weak_escrow_locked", self.index as i64);
                        let notice = TmInput::issue(
                            &self.signer,
                            TmInputKind::Locked,
                            self.payment,
                            self.index as u64,
                        );
                        for &tm in &self.tm_pids {
                            ctx.send(tm, PMsg::TmInput(notice));
                        }
                    }
                    Err(_) => ctx.mark("weak_escrow_lock_rejected", self.index as i64),
                }
            }
            PMsg::Decision(cert) => {
                let Some(v) = self
                    .certs
                    .offer(&cert, self.payment, &self.pki, &self.authority)
                else {
                    return;
                };
                match (v, self.deal) {
                    (Verdict::Commit, Some(deal)) => {
                        self.ledger
                            .release(deal)
                            .expect("locked deal releases once");
                        ctx.send(
                            self.down,
                            PMsg::Money {
                                payment: self.payment,
                                asset: self.asset,
                            },
                        );
                        ctx.mark("weak_escrow_released", self.index as i64);
                    }
                    (Verdict::Abort, Some(deal)) => {
                        self.ledger.refund(deal).expect("locked deal refunds once");
                        ctx.send(
                            self.up,
                            PMsg::Money {
                                payment: self.payment,
                                asset: self.asset,
                            },
                        );
                        ctx.mark("weak_escrow_refunded", self.index as i64);
                    }
                    // Nothing locked: nothing to settle (χa before any
                    // money, or a χc that — with an honest manager —
                    // cannot precede our lock; either way we hold no
                    // funds, so no-one loses anything).
                    (_, None) => ctx.mark("weak_escrow_no_deal", self.index as i64),
                }
                ctx.halt();
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<PMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<PMsg>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cert_collector_single_authority() {
        let mut pki = Pki::new(1);
        let (tm_id, tm) = pki.register();
        let payment = PaymentId::derive(1, &[tm_id]);
        let auth = Authority::Single(tm_id);
        let mut col = CertCollector::default();
        let cert = DecisionCert::issue_single(&tm, payment, Verdict::Commit);
        assert_eq!(
            col.offer(&cert, payment, &pki, &auth),
            Some(Verdict::Commit)
        );
        // Second offer is idempotent.
        assert_eq!(col.offer(&cert, payment, &pki, &auth), None);
        assert_eq!(col.accepted(), Some(Verdict::Commit));
    }

    #[test]
    fn cert_collector_committee_accumulates() {
        let mut pki = Pki::new(2);
        let pairs = pki.register_many(4);
        let members: Vec<KeyId> = pairs.iter().map(|(k, _)| *k).collect();
        let payment = PaymentId::derive(2, &members);
        let auth = Authority::committee(members.clone()); // threshold 3
        let payload = DecisionCert::payload(&payment, Verdict::Abort);
        let mut col = CertCollector::default();
        for (i, (_, s)) in pairs.iter().enumerate() {
            let share = DecisionCert::assemble(
                payment,
                Verdict::Abort,
                vec![s.sign(xcrypto::cert::DOM_DECISION, &payload)],
            );
            let got = col.offer(&share, payment, &pki, &auth);
            if i < 2 {
                assert_eq!(got, None, "below threshold at {i}");
            } else if i == 2 {
                assert_eq!(got, Some(Verdict::Abort), "threshold reached");
                break;
            }
        }
    }

    #[test]
    fn cert_collector_ignores_wrong_payment_and_duplicates() {
        let mut pki = Pki::new(3);
        let pairs = pki.register_many(4);
        let members: Vec<KeyId> = pairs.iter().map(|(k, _)| *k).collect();
        let payment = PaymentId::derive(3, &members);
        let other = PaymentId::derive(4, &members);
        let auth = Authority::committee(members);
        let payload = DecisionCert::payload(&payment, Verdict::Commit);
        let mut col = CertCollector::default();
        // Wrong payment: ignored entirely.
        let alien = DecisionCert::issue_single(&pairs[0].1, other, Verdict::Commit);
        assert_eq!(col.offer(&alien, payment, &pki, &auth), None);
        // The same signer three times does not reach the threshold.
        let share = DecisionCert::assemble(
            payment,
            Verdict::Commit,
            vec![pairs[0].1.sign(xcrypto::cert::DOM_DECISION, &payload)],
        );
        assert_eq!(col.offer(&share, payment, &pki, &auth), None);
        assert_eq!(col.offer(&share, payment, &pki, &auth), None);
        assert_eq!(col.offer(&share, payment, &pki, &auth), None);
        assert_eq!(col.accepted(), None);
    }

    #[test]
    fn patience_constructors() {
        let p = Patience::patient();
        assert_eq!(p.act_at, Some(SimDuration::ZERO));
        assert_eq!(p.abort_at, None);
        let u = Patience::until(SimDuration::from_millis(5));
        assert_eq!(u.abort_at, Some(SimDuration::from_millis(5)));
        let a = Patience::absent();
        assert_eq!(a.act_at, None);
    }
}
