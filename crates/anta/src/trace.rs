//! Execution traces.
//!
//! Every run records a totally ordered sequence of [`TraceEvent`]s. The
//! property checkers in the payment crate (C, T, ES, CS1–CS3, L, CC of
//! Definitions 1 and 2) are functions over these traces plus final ledger
//! and process states; the trace is the executable counterpart of the
//! paper's "upon termination / eventually" quantifiers.

use crate::fingerprint::Fnv64;
use crate::process::Pid;
use crate::time::SimTime;

/// How much of a run the engine records.
///
/// Exhaustive exploration and Monte-Carlo sweeps execute millions of runs
/// whose traces are read only through aggregate counters and the
/// payload-free events (halts, timers, marks). [`TraceMode::CountersOnly`]
/// skips storing the message events entirely — no payload is ever cloned
/// into the trace — while keeping every query of [`Trace`] answerable in
/// O(1) where it used to be O(events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record every event including full message payloads (the default;
    /// required by trace-structural checkers and the MSC renderer).
    #[default]
    Full,
    /// Keep only sent/delivered/dropped counters for message traffic, plus
    /// the payload-free events (timers, halts, marks) the outcome
    /// extractors need. Message payloads are never cloned.
    CountersOnly,
}

/// One observable step of a run. `real` is global simulation time (for
/// engine-level analysis); `local` is the acting process's clock reading
/// (what the process itself could know).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent<M> {
    /// Real (global) simulation time of the event.
    pub real: SimTime,
    /// The event payload / input kind, per context.
    pub kind: TraceKind<M>,
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind<M> {
    /// `from` executed a send of `msg` to `to`.
    Sent {
        /// Sender process id.
        from: Pid,
        /// Recipient process id.
        to: Pid,
        /// The message payload.
        msg: M,
    },
    /// `msg` from `from` was handed to `to`'s handler.
    Delivered {
        /// Sender process id.
        from: Pid,
        /// Recipient process id.
        to: Pid,
        /// The message payload.
        msg: M,
    },
    /// Message dropped by the network model.
    Dropped {
        /// Sender process id.
        from: Pid,
        /// Recipient process id.
        to: Pid,
        /// The message payload.
        msg: M,
    },
    /// Timer `id` fired at `pid`.
    TimerFired {
        /// The acting process.
        pid: Pid,
        /// Identifier (contract/timer id, per context).
        id: u64,
    },
    /// `pid` halted (terminated its protocol role).
    Halted {
        /// The acting process.
        pid: Pid,
        /// Local-clock reading at the event.
        local: SimTime,
    },
    /// Protocol-level annotation from `pid` (see `Ctx::mark`).
    Mark {
        /// The acting process.
        pid: Pid,
        /// Local-clock reading at the event.
        local: SimTime,
        /// Static annotation label.
        label: &'static str,
        /// Annotation value / voted value, per context.
        value: i64,
    },
}

/// A full run trace.
#[derive(Debug, Clone)]
pub struct Trace<M> {
    /// The events, in dispatch order. Empty of message events in
    /// [`TraceMode::CountersOnly`].
    pub events: Vec<TraceEvent<M>>,
    mode: TraceMode,
    sent: usize,
    delivered: usize,
    dropped: usize,
    /// Deliveries per recipient pid (grown on demand).
    delivered_to: Vec<usize>,
    /// Real time of the most recently recorded event (including events
    /// skipped by `CountersOnly`).
    end: SimTime,
    /// Rolling digest of every recorded event (kind, pids, times, mark
    /// labels/values) in order, maintained only when the engine enabled
    /// state fingerprinting. `None` ⇒ disabled (zero overhead).
    obs_digest: Option<Fnv64>,
}

impl<M> Default for Trace<M> {
    fn default() -> Self {
        Trace {
            events: Vec::new(),
            mode: TraceMode::Full,
            sent: 0,
            delivered: 0,
            dropped: 0,
            delivered_to: Vec::new(),
            end: SimTime::ZERO,
            obs_digest: None,
        }
    }
}

impl<M> Trace<M> {
    /// Empty trace recording everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty trace with the given recording mode.
    pub fn with_mode(mode: TraceMode) -> Self {
        Trace {
            mode,
            ..Self::default()
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Pre-sizes the event buffer (a no-op gain in `CountersOnly` mode).
    pub(crate) fn reserve(&mut self, events: usize) {
        if self.mode == TraceMode::Full {
            self.events
                .reserve(events.saturating_sub(self.events.len()));
        }
    }

    /// Turns on the rolling observable digest (reduced-explorer support).
    /// Must be called before any event is recorded.
    pub(crate) fn enable_digest(&mut self) {
        debug_assert!(self.events.is_empty() && self.end == SimTime::ZERO);
        self.obs_digest = Some(Fnv64::new());
    }

    /// The rolling digest of recorded events, when enabled. Covers kind,
    /// pids and mark labels/values — the *time-free* part of everything the
    /// outcome extractors read from a counters-only trace. Deliberately
    /// **not** covered here:
    ///
    /// * **event timestamps** — folding times (even relative ones) would
    ///   make the state fingerprint distinguish runs that differ only in
    ///   *when* the same events happened, defeating deduplication across
    ///   σ-delay choices. Merged runs therefore agree on the order of
    ///   events but not on their timestamps: a checker combined with
    ///   state-hash deduplication must be *time-robust* — its verdict may
    ///   read trace times only through predicates that hold (or fail)
    ///   uniformly across all schedules of the instance (see
    ///   [`Engine::enable_fingerprints`](crate::engine::Engine::enable_fingerprints)
    ///   for the full contract, and the differential explorer mode that
    ///   validates it per instance);
    /// * **stored message payloads** — in-flight payloads are digested by
    ///   the engine's queue hash; checkers that read payload bytes out of a
    ///   `Full` trace must not be combined with state-hash deduplication.
    pub fn obs_digest(&self) -> Option<u64> {
        self.obs_digest.map(|h| h.finish())
    }

    fn digest_event(&mut self, kind: &TraceKind<M>) {
        let Some(h) = self.obs_digest.as_mut() else {
            return;
        };
        match kind {
            TraceKind::Sent { from, to, .. } => {
                h.write_u64(1);
                h.write_usize(*from);
                h.write_usize(*to);
            }
            TraceKind::Delivered { from, to, .. } => {
                h.write_u64(2);
                h.write_usize(*from);
                h.write_usize(*to);
            }
            TraceKind::Dropped { from, to, .. } => {
                h.write_u64(3);
                h.write_usize(*from);
                h.write_usize(*to);
            }
            TraceKind::TimerFired { pid, id } => {
                h.write_u64(4);
                h.write_usize(*pid);
                h.write_u64(*id);
            }
            TraceKind::Halted { pid, .. } => {
                h.write_u64(5);
                h.write_usize(*pid);
            }
            TraceKind::Mark {
                pid, label, value, ..
            } => {
                h.write_u64(6);
                h.write_usize(*pid);
                h.write_bytes(label.as_bytes());
                h.write_i64(*value);
            }
        }
    }

    pub(crate) fn push(&mut self, real: SimTime, kind: TraceKind<M>) {
        match &kind {
            TraceKind::Sent { .. } => self.sent += 1,
            TraceKind::Delivered { to, .. } => self.count_delivery(*to),
            TraceKind::Dropped { .. } => self.dropped += 1,
            _ => {}
        }
        self.digest_event(&kind);
        self.end = real;
        self.events.push(TraceEvent { real, kind });
    }

    fn count_delivery(&mut self, to: Pid) {
        self.delivered += 1;
        if to >= self.delivered_to.len() {
            self.delivered_to.resize(to + 1, 0);
        }
        self.delivered_to[to] += 1;
    }

    /// Records a send; clones the payload into the trace only in
    /// [`TraceMode::Full`].
    pub(crate) fn record_sent(&mut self, real: SimTime, from: Pid, to: Pid, msg: &M)
    where
        M: Clone,
    {
        match self.mode {
            TraceMode::Full => self.push(
                real,
                TraceKind::Sent {
                    from,
                    to,
                    msg: msg.clone(),
                },
            ),
            TraceMode::CountersOnly => {
                self.sent += 1;
                self.end = real;
            }
        }
    }

    /// Records a delivery; clones the payload only in [`TraceMode::Full`].
    pub(crate) fn record_delivered(&mut self, real: SimTime, from: Pid, to: Pid, msg: &M)
    where
        M: Clone,
    {
        match self.mode {
            TraceMode::Full => self.push(
                real,
                TraceKind::Delivered {
                    from,
                    to,
                    msg: msg.clone(),
                },
            ),
            TraceMode::CountersOnly => {
                self.count_delivery(to);
                self.end = real;
            }
        }
    }

    /// Records a drop, storing the payload only in [`TraceMode::Full`].
    pub(crate) fn record_dropped(&mut self, real: SimTime, from: Pid, to: Pid, msg: M) {
        match self.mode {
            TraceMode::Full => self.push(real, TraceKind::Dropped { from, to, msg }),
            TraceMode::CountersOnly => {
                self.dropped += 1;
                self.end = real;
            }
        }
    }

    /// All `Mark` events with the given label, as `(pid, real, local, value)`.
    pub fn marks<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = (Pid, SimTime, SimTime, i64)> + 'a {
        self.events.iter().filter_map(move |e| match &e.kind {
            TraceKind::Mark {
                pid,
                local,
                label: l,
                value,
            } if *l == label => Some((*pid, e.real, *local, *value)),
            _ => None,
        })
    }

    /// First real time a mark with `label` was emitted by `pid`.
    pub fn first_mark(&self, pid: Pid, label: &str) -> Option<SimTime> {
        self.marks(label)
            .find(|(p, _, _, _)| *p == pid)
            .map(|(_, real, _, _)| real)
    }

    /// Real halt time of `pid`, if it halted.
    pub fn halt_time(&self, pid: Pid) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e.kind {
            TraceKind::Halted { pid: p, .. } if p == pid => Some(e.real),
            _ => None,
        })
    }

    /// Local clock reading at which `pid` halted.
    pub fn halt_local_time(&self, pid: Pid) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e.kind {
            TraceKind::Halted { pid: p, local } if p == pid => Some(local),
            _ => None,
        })
    }

    /// Number of messages delivered to `to` (any sender). O(1): maintained
    /// as a per-recipient counter.
    pub fn delivered_count(&self, to: Pid) -> usize {
        self.delivered_to.get(to).copied().unwrap_or(0)
    }

    /// Total messages delivered in the run (any recipient). O(1).
    pub fn delivered_total(&self) -> usize {
        self.delivered
    }

    /// Total messages sent in the run. O(1): maintained as a counter.
    pub fn sent_count(&self) -> usize {
        self.sent
    }

    /// Total messages dropped by the network. O(1).
    pub fn dropped_count(&self) -> usize {
        self.dropped
    }

    /// The real time of the last recorded event (including events elided by
    /// [`TraceMode::CountersOnly`]), or zero for an empty trace.
    pub fn end_time(&self) -> SimTime {
        self.end
    }
}

impl<M: std::fmt::Debug> Trace<M> {
    /// Renders the run as an ASCII message-sequence chart: one column per
    /// process, one row per delivery/halt/timer event, in dispatch order.
    /// `names[p]` labels process `p`; message payloads are shown via a
    /// caller-supplied formatter so domain crates can print `G`/`P`/`$`/χ
    /// instead of debug dumps.
    pub fn render_msc(&self, names: &[&str], mut label: impl FnMut(&M) -> String) -> String {
        use std::fmt::Write as _;
        let width = 14usize;
        let cols = names.len();
        let mut out = String::new();
        for name in names {
            let _ = write!(out, "{name:^width$}");
        }
        out.push('\n');
        for _ in 0..cols {
            let _ = write!(out, "{:^width$}", "|");
        }
        out.push('\n');
        for ev in &self.events {
            match &ev.kind {
                TraceKind::Delivered { from, to, msg } => {
                    let (a, b) = (*from.min(to), *from.max(to));
                    if a >= cols || b >= cols {
                        continue;
                    }
                    let text = label(msg);
                    let mut line = String::new();
                    for c in 0..cols {
                        if c < a || c > b || a == b {
                            let _ = write!(line, "{:^width$}", "|");
                        } else if c == a {
                            let arrow = if *from == a { "+--" } else { "<--" };
                            let _ = write!(line, "{arrow:-<width$}");
                        } else if c == b {
                            let arrow = if *to == b {
                                format!("->{text}")
                            } else {
                                format!("--+{text}")
                            };
                            let _ = write!(line, "{arrow:<width$}");
                        } else {
                            let _ = write!(line, "{:-<width$}", "-");
                        }
                    }
                    let _ = writeln!(out, "{}  t={}", line.trim_end(), ev.real);
                }
                TraceKind::Halted { pid, .. } if *pid < cols => {
                    let mut line = String::new();
                    for c in 0..cols {
                        let cell = if c == *pid { "X" } else { "|" };
                        let _ = write!(line, "{cell:^width$}");
                    }
                    let _ = writeln!(out, "{}  t={} (halt)", line.trim_end(), ev.real);
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn mark_queries() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(5),
            TraceKind::Mark {
                pid: 1,
                local: t(6),
                label: "paid",
                value: 10,
            },
        );
        tr.push(
            t(9),
            TraceKind::Mark {
                pid: 2,
                local: t(9),
                label: "paid",
                value: 20,
            },
        );
        tr.push(
            t(11),
            TraceKind::Mark {
                pid: 1,
                local: t(12),
                label: "refund",
                value: 10,
            },
        );
        assert_eq!(tr.marks("paid").count(), 2);
        assert_eq!(tr.first_mark(1, "paid"), Some(t(5)));
        assert_eq!(tr.first_mark(1, "refund"), Some(t(11)));
        assert_eq!(tr.first_mark(3, "paid"), None);
    }

    #[test]
    fn halt_and_counts() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(1),
            TraceKind::Sent {
                from: 0,
                to: 1,
                msg: 7,
            },
        );
        tr.push(
            t(2),
            TraceKind::Delivered {
                from: 0,
                to: 1,
                msg: 7,
            },
        );
        tr.push(
            t(2),
            TraceKind::Dropped {
                from: 1,
                to: 0,
                msg: 8,
            },
        );
        tr.push(
            t(3),
            TraceKind::Halted {
                pid: 1,
                local: t(4),
            },
        );
        assert_eq!(tr.sent_count(), 1);
        assert_eq!(tr.delivered_count(1), 1);
        assert_eq!(tr.delivered_count(0), 0);
        assert_eq!(tr.dropped_count(), 1);
        assert_eq!(tr.halt_time(1), Some(t(3)));
        assert_eq!(tr.halt_local_time(1), Some(t(4)));
        assert_eq!(tr.halt_time(0), None);
        assert_eq!(tr.end_time(), t(3));
    }

    #[test]
    fn msc_renders_deliveries_and_halts() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(5),
            TraceKind::Delivered {
                from: 0,
                to: 2,
                msg: 7,
            },
        );
        tr.push(
            t(9),
            TraceKind::Delivered {
                from: 2,
                to: 1,
                msg: 8,
            },
        );
        tr.push(
            t(12),
            TraceKind::Halted {
                pid: 1,
                local: t(12),
            },
        );
        tr.push(t(13), TraceKind::TimerFired { pid: 0, id: 1 }); // not drawn
        let msc = tr.render_msc(&["alice", "escrow", "bob"], |m| format!("m{m}"));
        assert!(msc.contains("alice"));
        assert!(msc.contains("->m7"));
        assert!(msc.contains("m8"));
        assert!(msc.contains("(halt)"));
        // Right number of event rows: header(2) + 3 drawn events.
        assert_eq!(msc.trim_end().lines().count(), 5, "{msc}");
    }

    #[test]
    fn msc_ignores_out_of_range_pids() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(1),
            TraceKind::Delivered {
                from: 0,
                to: 9,
                msg: 1,
            },
        );
        let msc = tr.render_msc(&["a", "b"], |m| m.to_string());
        assert_eq!(msc.trim_end().lines().count(), 2, "only the header: {msc}");
    }

    #[test]
    fn empty_trace() {
        let tr: Trace<u32> = Trace::new();
        assert_eq!(tr.end_time(), SimTime::ZERO);
        assert_eq!(tr.sent_count(), 0);
    }

    #[test]
    fn counters_only_elides_message_events_but_keeps_counts() {
        let mut tr: Trace<u32> = Trace::with_mode(TraceMode::CountersOnly);
        tr.record_sent(t(1), 0, 1, &7);
        tr.record_delivered(t(2), 0, 1, &7);
        tr.record_sent(t(2), 1, 0, &8);
        tr.record_dropped(t(3), 1, 0, 8);
        tr.push(
            t(4),
            TraceKind::Mark {
                pid: 1,
                local: t(4),
                label: "paid",
                value: 1,
            },
        );
        tr.push(
            t(5),
            TraceKind::Halted {
                pid: 1,
                local: t(5),
            },
        );
        // Message events elided, payload-free events retained.
        assert_eq!(tr.events.len(), 2);
        // Counters identical to what Full mode would report.
        assert_eq!(tr.sent_count(), 2);
        assert_eq!(tr.delivered_total(), 1);
        assert_eq!(tr.delivered_count(1), 1);
        assert_eq!(tr.delivered_count(0), 0);
        assert_eq!(tr.dropped_count(), 1);
        assert_eq!(tr.end_time(), t(5));
        assert_eq!(tr.marks("paid").count(), 1);
        assert_eq!(tr.halt_time(1), Some(t(5)));
    }

    #[test]
    fn full_mode_counters_match_event_scan() {
        let mut tr: Trace<u32> = Trace::new();
        assert_eq!(tr.mode(), TraceMode::Full);
        tr.record_sent(t(1), 0, 1, &7);
        tr.record_delivered(t(2), 0, 1, &7);
        tr.record_dropped(t(3), 1, 0, 9);
        assert_eq!(tr.events.len(), 3);
        assert_eq!(tr.sent_count(), 1);
        assert_eq!(tr.delivered_count(1), 1);
        assert_eq!(tr.dropped_count(), 1);
        assert_eq!(tr.end_time(), t(3));
    }
}
