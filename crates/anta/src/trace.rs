//! Execution traces.
//!
//! Every run records a totally ordered sequence of [`TraceEvent`]s. The
//! property checkers in the payment crate (C, T, ES, CS1–CS3, L, CC of
//! Definitions 1 and 2) are functions over these traces plus final ledger
//! and process states; the trace is the executable counterpart of the
//! paper's "upon termination / eventually" quantifiers.

use crate::process::Pid;
use crate::time::SimTime;

/// One observable step of a run. `real` is global simulation time (for
/// engine-level analysis); `local` is the acting process's clock reading
/// (what the process itself could know).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent<M> {
    /// Real (global) simulation time of the event.
    pub real: SimTime,
    /// The event payload / input kind, per context.
    pub kind: TraceKind<M>,
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind<M> {
    /// `from` executed a send of `msg` to `to`.
    Sent {
        /// Sender process id.
        from: Pid,
        /// Recipient process id.
        to: Pid,
        /// The message payload.
        msg: M,
    },
    /// `msg` from `from` was handed to `to`'s handler.
    Delivered {
        /// Sender process id.
        from: Pid,
        /// Recipient process id.
        to: Pid,
        /// The message payload.
        msg: M,
    },
    /// Message dropped by the network model.
    Dropped {
        /// Sender process id.
        from: Pid,
        /// Recipient process id.
        to: Pid,
        /// The message payload.
        msg: M,
    },
    /// Timer `id` fired at `pid`.
    TimerFired {
        /// The acting process.
        pid: Pid,
        /// Identifier (contract/timer id, per context).
        id: u64,
    },
    /// `pid` halted (terminated its protocol role).
    Halted {
        /// The acting process.
        pid: Pid,
        /// Local-clock reading at the event.
        local: SimTime,
    },
    /// Protocol-level annotation from `pid` (see `Ctx::mark`).
    Mark {
        /// The acting process.
        pid: Pid,
        /// Local-clock reading at the event.
        local: SimTime,
        /// Static annotation label.
        label: &'static str,
        /// Annotation value / voted value, per context.
        value: i64,
    },
}

/// A full run trace.
#[derive(Debug, Clone, Default)]
pub struct Trace<M> {
    /// The events, in dispatch order.
    pub events: Vec<TraceEvent<M>>,
}

impl<M> Trace<M> {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    pub(crate) fn push(&mut self, real: SimTime, kind: TraceKind<M>) {
        self.events.push(TraceEvent { real, kind });
    }

    /// All `Mark` events with the given label, as `(pid, real, local, value)`.
    pub fn marks(&self, label: &str) -> impl Iterator<Item = (Pid, SimTime, SimTime, i64)> + '_ {
        let want = label.to_owned();
        self.events.iter().filter_map(move |e| match &e.kind {
            TraceKind::Mark {
                pid,
                local,
                label,
                value,
            } if *label == want => Some((*pid, e.real, *local, *value)),
            _ => None,
        })
    }

    /// First real time a mark with `label` was emitted by `pid`.
    pub fn first_mark(&self, pid: Pid, label: &str) -> Option<SimTime> {
        self.marks(label)
            .find(|(p, _, _, _)| *p == pid)
            .map(|(_, real, _, _)| real)
    }

    /// Real halt time of `pid`, if it halted.
    pub fn halt_time(&self, pid: Pid) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e.kind {
            TraceKind::Halted { pid: p, .. } if p == pid => Some(e.real),
            _ => None,
        })
    }

    /// Local clock reading at which `pid` halted.
    pub fn halt_local_time(&self, pid: Pid) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e.kind {
            TraceKind::Halted { pid: p, local } if p == pid => Some(local),
            _ => None,
        })
    }

    /// Number of messages delivered to `to` (any sender).
    pub fn delivered_count(&self, to: Pid) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Delivered { to: t, .. } if t == to))
            .count()
    }

    /// Total messages sent in the run.
    pub fn sent_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Sent { .. }))
            .count()
    }

    /// Total messages dropped by the network.
    pub fn dropped_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Dropped { .. }))
            .count()
    }

    /// The real time of the last event, or zero for an empty trace.
    pub fn end_time(&self) -> SimTime {
        self.events.last().map(|e| e.real).unwrap_or(SimTime::ZERO)
    }
}

impl<M: std::fmt::Debug> Trace<M> {
    /// Renders the run as an ASCII message-sequence chart: one column per
    /// process, one row per delivery/halt/timer event, in dispatch order.
    /// `names[p]` labels process `p`; message payloads are shown via a
    /// caller-supplied formatter so domain crates can print `G`/`P`/`$`/χ
    /// instead of debug dumps.
    pub fn render_msc(&self, names: &[&str], mut label: impl FnMut(&M) -> String) -> String {
        use std::fmt::Write as _;
        let width = 14usize;
        let cols = names.len();
        let mut out = String::new();
        for name in names {
            let _ = write!(out, "{name:^width$}");
        }
        out.push('\n');
        for _ in 0..cols {
            let _ = write!(out, "{:^width$}", "|");
        }
        out.push('\n');
        for ev in &self.events {
            match &ev.kind {
                TraceKind::Delivered { from, to, msg } => {
                    let (a, b) = (*from.min(to), *from.max(to));
                    if a >= cols || b >= cols {
                        continue;
                    }
                    let text = label(msg);
                    let mut line = String::new();
                    for c in 0..cols {
                        if c < a || c > b || a == b {
                            let _ = write!(line, "{:^width$}", "|");
                        } else if c == a {
                            let arrow = if *from == a { "+--" } else { "<--" };
                            let _ = write!(line, "{arrow:-<width$}");
                        } else if c == b {
                            let arrow = if *to == b {
                                format!("->{text}")
                            } else {
                                format!("--+{text}")
                            };
                            let _ = write!(line, "{arrow:<width$}");
                        } else {
                            let _ = write!(line, "{:-<width$}", "-");
                        }
                    }
                    let _ = writeln!(out, "{}  t={}", line.trim_end(), ev.real);
                }
                TraceKind::Halted { pid, .. } if *pid < cols => {
                    let mut line = String::new();
                    for c in 0..cols {
                        let cell = if c == *pid { "X" } else { "|" };
                        let _ = write!(line, "{cell:^width$}");
                    }
                    let _ = writeln!(out, "{}  t={} (halt)", line.trim_end(), ev.real);
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn mark_queries() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(5),
            TraceKind::Mark {
                pid: 1,
                local: t(6),
                label: "paid",
                value: 10,
            },
        );
        tr.push(
            t(9),
            TraceKind::Mark {
                pid: 2,
                local: t(9),
                label: "paid",
                value: 20,
            },
        );
        tr.push(
            t(11),
            TraceKind::Mark {
                pid: 1,
                local: t(12),
                label: "refund",
                value: 10,
            },
        );
        assert_eq!(tr.marks("paid").count(), 2);
        assert_eq!(tr.first_mark(1, "paid"), Some(t(5)));
        assert_eq!(tr.first_mark(1, "refund"), Some(t(11)));
        assert_eq!(tr.first_mark(3, "paid"), None);
    }

    #[test]
    fn halt_and_counts() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(1),
            TraceKind::Sent {
                from: 0,
                to: 1,
                msg: 7,
            },
        );
        tr.push(
            t(2),
            TraceKind::Delivered {
                from: 0,
                to: 1,
                msg: 7,
            },
        );
        tr.push(
            t(2),
            TraceKind::Dropped {
                from: 1,
                to: 0,
                msg: 8,
            },
        );
        tr.push(
            t(3),
            TraceKind::Halted {
                pid: 1,
                local: t(4),
            },
        );
        assert_eq!(tr.sent_count(), 1);
        assert_eq!(tr.delivered_count(1), 1);
        assert_eq!(tr.delivered_count(0), 0);
        assert_eq!(tr.dropped_count(), 1);
        assert_eq!(tr.halt_time(1), Some(t(3)));
        assert_eq!(tr.halt_local_time(1), Some(t(4)));
        assert_eq!(tr.halt_time(0), None);
        assert_eq!(tr.end_time(), t(3));
    }

    #[test]
    fn msc_renders_deliveries_and_halts() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(5),
            TraceKind::Delivered {
                from: 0,
                to: 2,
                msg: 7,
            },
        );
        tr.push(
            t(9),
            TraceKind::Delivered {
                from: 2,
                to: 1,
                msg: 8,
            },
        );
        tr.push(
            t(12),
            TraceKind::Halted {
                pid: 1,
                local: t(12),
            },
        );
        tr.push(t(13), TraceKind::TimerFired { pid: 0, id: 1 }); // not drawn
        let msc = tr.render_msc(&["alice", "escrow", "bob"], |m| format!("m{m}"));
        assert!(msc.contains("alice"));
        assert!(msc.contains("->m7"));
        assert!(msc.contains("m8"));
        assert!(msc.contains("(halt)"));
        // Right number of event rows: header(2) + 3 drawn events.
        assert_eq!(msc.trim_end().lines().count(), 5, "{msc}");
    }

    #[test]
    fn msc_ignores_out_of_range_pids() {
        let mut tr: Trace<u32> = Trace::new();
        tr.push(
            t(1),
            TraceKind::Delivered {
                from: 0,
                to: 9,
                msg: 1,
            },
        );
        let msc = tr.render_msc(&["a", "b"], |m| m.to_string());
        assert_eq!(msc.trim_end().lines().count(), 2, "only the header: {msc}");
    }

    #[test]
    fn empty_trace() {
        let tr: Trace<u32> = Trace::new();
        assert_eq!(tr.end_time(), SimTime::ZERO);
        assert_eq!(tr.sent_count(), 0);
    }
}
