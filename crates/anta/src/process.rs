//! The process interface between protocol code and the simulation engine.
//!
//! A [`Process`] sees the world exactly as an ANTA automaton does:
//!
//! * its **local clock** (`ctx.now()`), never real simulation time;
//! * incoming messages (`on_message`) — the `r(id, m)` transitions;
//! * its own timers (`on_timer`) — the `now ≥ x + d` time-out transitions;
//! * the ability to send (`ctx.send`) — the `s(id, m)` transitions.
//!
//! Protocol implementations (the Figure 2 automata, the weak-liveness
//! participants, the consensus notaries, Byzantine strategies) all implement
//! this trait; the data-driven [`crate::automaton`] interpreter is itself
//! just one more `Process`.

use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Index of a process within an engine. Dense, assigned in registration
/// order — used directly as an arena index (perf-book idiom: no hashing on
/// the hot path).
pub type Pid = usize;

/// Identifier for a timer registered by a process (process-local meaning).
pub type TimerId = u64;

/// Messages must be cheaply clonable values.
pub trait Message: Clone + std::fmt::Debug + 'static {}
impl<T: Clone + std::fmt::Debug + 'static> Message for T {}

/// Effects a process can request during a handler invocation. Collected by
/// the [`Ctx`] and applied by the engine after the handler returns, so
/// handlers never re-enter the engine.
#[derive(Debug)]
pub enum Effect<M> {
    /// Send `msg` to `to` (the `s(to, msg)` action).
    Send {
        /// Recipient process id.
        to: Pid,
        /// The message payload.
        msg: M,
    },
    /// Request `on_timer(id)` once the local clock reads ≥ `at_local`.
    SetTimer {
        /// Identifier (contract/timer id, per context).
        id: TimerId,
        /// Local-clock deadline.
        at_local: SimTime,
    },
    /// Stop participating: no further handlers run for this process.
    Halt,
    /// Trace annotation (protocol-level observation, e.g. "got_money").
    Mark {
        /// Static annotation label.
        label: &'static str,
        /// Annotation value / voted value, per context.
        value: i64,
    },
}

/// Handler context: the process's window onto the engine.
pub struct Ctx<M> {
    pid: Pid,
    now_local: SimTime,
    effects: Vec<Effect<M>>,
}

impl<M> Ctx<M> {
    #[cfg(test)]
    pub(crate) fn new(pid: Pid, now_local: SimTime) -> Self {
        Self::recycled(pid, now_local, Vec::new())
    }

    /// Builds a context over a recycled effects buffer, so the engine pays
    /// for the effects allocation once per run instead of once per handler
    /// dispatch. The buffer is cleared; its capacity is kept.
    pub(crate) fn recycled(pid: Pid, now_local: SimTime, mut effects: Vec<Effect<M>>) -> Self {
        effects.clear();
        Ctx {
            pid,
            now_local,
            effects,
        }
    }

    pub(crate) fn into_effects(self) -> Vec<Effect<M>> {
        self.effects
    }

    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The local clock reading (`now` in the paper's automata).
    pub fn now(&self) -> SimTime {
        self.now_local
    }

    /// Sends `msg` to `to`.
    pub fn send(&mut self, to: Pid, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Fires `on_timer(id)` when the local clock reaches `at_local`.
    /// Deadlines already in the past fire immediately (next event).
    pub fn set_timer_at(&mut self, id: TimerId, at_local: SimTime) {
        self.effects.push(Effect::SetTimer { id, at_local });
    }

    /// Fires `on_timer(id)` after `d` of *local* time.
    pub fn set_timer_after(&mut self, id: TimerId, d: SimDuration) {
        let at = self.now_local.saturating_add(d);
        self.set_timer_at(id, at);
    }

    /// Halts this process (terminal states of the automata).
    pub fn halt(&mut self) {
        self.effects.push(Effect::Halt);
    }

    /// Records a protocol-level observation in the trace, with local
    /// timestamp. Used by the property checkers (termination times, money
    /// received, certificates issued…).
    pub fn mark(&mut self, label: &'static str, value: i64) {
        self.effects.push(Effect::Mark { label, value });
    }
}

/// A participant in the simulated network.
///
/// `Debug` is a supertrait because the reduced schedule explorer
/// fingerprints engine states: a process's protocol-relevant state is
/// digested from its `Debug` rendering (see
/// [`crate::engine::Engine::enable_fingerprints`]). The rendering must
/// therefore cover every field that can influence the process's future
/// behaviour; shared immutable configuration (specs, key registries) may be
/// elided from manual impls, mutable state may not.
pub trait Process<M>: std::fmt::Debug + 'static {
    /// Invoked once at simulation start (time 0 on the local clock modulo
    /// offset). ANTA automata use this to leave their initial grey states.
    fn on_start(&mut self, ctx: &mut Ctx<M>);

    /// A message has been delivered to this process.
    fn on_message(&mut self, from: Pid, msg: M, ctx: &mut Ctx<M>);

    /// A timer set earlier has fired (local clock ≥ its deadline).
    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<M>);

    /// Downcasting hook so property checkers can inspect final states.
    fn as_any(&self) -> &dyn Any;

    /// Clones the process into a fresh box — required by the schedule
    /// explorer, which forks simulations at choice points.
    fn box_clone(&self) -> Box<dyn Process<M>>;

    /// Digest of the process's **time-free** mutable state, folded into the
    /// engine's state fingerprint. Default: the full `Debug` rendering.
    ///
    /// Override (together with [`Process::fp_times`]) when the process
    /// stores absolute local-clock instants (`ctx.now()` snapshots). The
    /// override must digest every behaviour-bearing field **except** those
    /// instants (including an `is_some()` flag for optional ones), and then
    /// for each instant either:
    ///
    /// * push it to `fp_times`, in a fixed order, if the process's *future*
    ///   behaviour still reads it (a live `now ≥ u + d` timeout race). The
    ///   engine folds it as a residue against the current local clock, so
    ///   states with the same pending-timeout structure reached earlier or
    ///   later fingerprint identically and deduplicate; or
    /// * omit it entirely if it is kept only for post-run checkers (a
    ///   recorded "when did I pay" instant). Past times are deliberately
    ///   abstracted out of the fingerprint — see the time-robust checker
    ///   contract on
    ///   [`Engine::enable_fingerprints`](crate::engine::Engine::enable_fingerprints).
    ///
    /// Keeping an absolute instant in the default `Debug` digest is always
    /// *sound* (extra distinctions never merge states wrongly); it only
    /// forfeits reduction.
    fn fp_digest(&self) -> u64 {
        crate::fingerprint::debug_digest(self)
    }

    /// Absolute local-clock instants this process's **future** behaviour
    /// still reads, pushed in a fixed order; folded into the state
    /// fingerprint as residues against the local clock. See
    /// [`Process::fp_digest`] for the override contract. Default: none.
    fn fp_times(&self, _out: &mut Vec<SimTime>) {}
}

impl<M: 'static> Clone for Box<dyn Process<M>> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Implements the `as_any`/`box_clone` boilerplate for a `Process` impl that
/// is `Clone`.
#[macro_export]
macro_rules! impl_process_boilerplate {
    ($msg:ty) => {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn box_clone(&self) -> Box<dyn $crate::process::Process<$msg>> {
            Box::new(self.clone())
        }
    };
}

/// A process that does nothing — useful as a crash-from-start fault and in
/// engine tests.
#[derive(Debug, Clone, Default)]
pub struct InertProcess;

impl<M: Message> Process<M> for InertProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<M>) {}
    fn on_message(&mut self, _from: Pid, _msg: M, _ctx: &mut Ctx<M>) {}
    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<M>) {}
    impl_process_boilerplate!(M);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_effects_in_order() {
        let mut ctx: Ctx<u32> = Ctx::new(3, SimTime::from_ticks(50));
        assert_eq!(ctx.pid(), 3);
        assert_eq!(ctx.now(), SimTime::from_ticks(50));
        ctx.send(1, 42);
        ctx.set_timer_after(7, SimDuration::from_ticks(10));
        ctx.mark("m", -1);
        ctx.halt();
        let fx = ctx.into_effects();
        assert_eq!(fx.len(), 4);
        match &fx[0] {
            Effect::Send { to, msg } => {
                assert_eq!(*to, 1);
                assert_eq!(*msg, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &fx[1] {
            Effect::SetTimer { id, at_local } => {
                assert_eq!(*id, 7);
                assert_eq!(*at_local, SimTime::from_ticks(60));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            fx[2],
            Effect::Mark {
                label: "m",
                value: -1
            }
        ));
        assert!(matches!(fx[3], Effect::Halt));
    }

    #[test]
    fn timer_after_saturates() {
        let mut ctx: Ctx<u32> = Ctx::new(0, SimTime::MAX);
        ctx.set_timer_after(1, SimDuration::MAX);
        match &ctx.into_effects()[0] {
            Effect::SetTimer { at_local, .. } => assert_eq!(*at_local, SimTime::MAX),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boxed_process_clone_works() {
        let p: Box<dyn Process<u32>> = Box::new(InertProcess);
        let _q = p.clone();
    }
}
