//! Fixed-point simulated time.
//!
//! All timing in the workspace uses integer *ticks* (1 tick ≡ 1 simulated
//! microsecond). Integer fixed-point keeps every simulation bit-for-bit
//! deterministic across platforms — a prerequisite for the seeded
//! reproducibility of the experiments and for the schedule explorer — and
//! avoids float accumulation error in the timeout calculus, where the paper's
//! correctness argument hinges on exact inequalities between deadlines.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in simulated time (ticks since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

/// Ticks per simulated millisecond.
pub const MILLI: u64 = 1_000;
/// Ticks per simulated second.
pub const SECOND: u64 = 1_000_000;

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw ticks (µs).
    pub const fn from_ticks(t: u64) -> Self {
        SimTime(t)
    }

    /// Constructs from whole simulated milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MILLI)
    }

    /// Constructs from whole simulated seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * SECOND)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The duration from `earlier` to `self`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration (caps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Longest representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs from raw ticks (µs).
    pub const fn from_ticks(t: u64) -> Self {
        SimDuration(t)
    }

    /// Constructs from whole simulated milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MILLI)
    }

    /// Constructs from whole simulated seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * SECOND)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// True iff zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a rational factor `num/den`, rounding **up**.
    ///
    /// Deadline arithmetic always rounds pessimistically: a deadline scaled
    /// by a drift factor must never come out shorter than the true bound.
    /// Uses a 128-bit intermediate, so no overflow for any realistic input.
    pub fn scale_ceil(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "scale_ceil: zero denominator");
        let prod = self.0 as u128 * num as u128;
        let out = prod.div_ceil(den as u128);
        SimDuration(u64::try_from(out).unwrap_or(u64::MAX))
    }

    /// Multiplies by `num/den`, rounding **down** (for lower bounds).
    pub fn scale_floor(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "scale_floor: zero denominator");
        let prod = self.0 as u128 * num as u128;
        SimDuration(u64::try_from(prod / den as u128).unwrap_or(u64::MAX))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating multiplication by an integer.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("negative SimDuration"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

/// Shared pretty-printer: `1.250s`, `37ms`, `512µs`.
fn fmt_ticks(t: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if t >= SECOND && t % MILLI == 0 {
        write!(f, "{}.{:03}s", t / SECOND, (t % SECOND) / MILLI)
    } else if t >= MILLI && t % MILLI == 0 {
        write!(f, "{}ms", t / MILLI)
    } else {
        write!(f, "{}µs", t)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ticks(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ticks(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_millis(3).ticks(), 3_000);
        assert_eq!(SimTime::from_secs(2).ticks(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).ticks(), 5_000);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_ticks(1).is_zero());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(100);
        let d = SimDuration::from_ticks(40);
        assert_eq!(t + d, SimTime::from_ticks(140));
        assert_eq!((t + d) - d, t);
        assert_eq!(SimTime::from_ticks(140) - t, d);
        assert_eq!(d * 3, SimDuration::from_ticks(120));
        assert_eq!(d / 4, SimDuration::from_ticks(10));
        assert_eq!(d + d, SimDuration::from_ticks(80));
        assert_eq!(d - SimDuration::from_ticks(15), SimDuration::from_ticks(25));
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_ticks(1) - SimTime::from_ticks(2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_ticks(5).saturating_since(SimTime::from_ticks(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_ticks(9).checked_since(SimTime::from_ticks(5)),
            Some(SimDuration(4))
        );
        assert_eq!(
            SimTime::from_ticks(5).checked_since(SimTime::from_ticks(9)),
            None
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_ticks(10)),
            SimTime::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn scale_rounding_directions() {
        let d = SimDuration::from_ticks(10);
        // 10 * 1/3 = 3.33… → ceil 4, floor 3.
        assert_eq!(d.scale_ceil(1, 3), SimDuration::from_ticks(4));
        assert_eq!(d.scale_floor(1, 3), SimDuration::from_ticks(3));
        // Exact division: both agree.
        assert_eq!(d.scale_ceil(1, 2), d.scale_floor(1, 2));
    }

    #[test]
    fn scale_no_overflow_at_large_values() {
        let d = SimDuration::from_ticks(u64::MAX / 2);
        // (1+ρ) with ρ = 200ppm — must not overflow.
        let scaled = d.scale_ceil(1_000_200, 1_000_000);
        assert!(scaled.ticks() > d.ticks());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(SimDuration::from_ticks(512).to_string(), "512µs");
        assert_eq!(SimDuration::from_millis(37).to_string(), "37ms");
        assert_eq!(SimTime::from_ticks(1_250_000).to_string(), "1.250s");
    }

    proptest! {
        #[test]
        fn prop_scale_ceil_geq_floor(t in 0u64..1u64 << 40, num in 1u64..2_000_000, den in 1u64..2_000_000) {
            let d = SimDuration::from_ticks(t);
            prop_assert!(d.scale_ceil(num, den) >= d.scale_floor(num, den));
            // They differ by at most one tick.
            prop_assert!(d.scale_ceil(num, den).ticks() - d.scale_floor(num, den).ticks() <= 1);
        }

        #[test]
        fn prop_scale_monotone_in_input(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, num in 1u64..2_000_000u64) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                SimDuration::from_ticks(lo).scale_ceil(num, 1_000_000)
                    <= SimDuration::from_ticks(hi).scale_ceil(num, 1_000_000)
            );
        }

        #[test]
        fn prop_scale_identity(t in 0u64..1u64 << 50) {
            let d = SimDuration::from_ticks(t);
            prop_assert_eq!(d.scale_ceil(1, 1), d);
            prop_assert_eq!(d.scale_floor(7, 7), d);
        }

        #[test]
        fn prop_add_sub_roundtrip(t in 0u64..1u64 << 60, d in 0u64..1u64 << 60) {
            let time = SimTime::from_ticks(t);
            let dur = SimDuration::from_ticks(d);
            prop_assert_eq!((time + dur) - dur, time);
            prop_assert_eq!((time + dur) - time, dur);
        }
    }
}
