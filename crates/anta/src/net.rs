//! Network timing models and adversaries.
//!
//! The paper's results split exactly along network assumptions \[1\]:
//!
//! * **Synchrony** ([`SyncNet`]) — every message arrives within a known
//!   bound δ. Theorem 1: time-bounded cross-chain payment is solvable.
//! * **Partial synchrony** ([`PartialSyncNet`]) — there is an *unknown*
//!   Global Stabilisation Time (GST); messages sent at `t` arrive by
//!   `max(t, GST) + δ`, but before GST the adversary controls delays.
//!   Theorem 2: no eventually terminating protocol exists. Theorem 3: the
//!   weak-liveness variant is solvable.
//! * **Adversarial** ([`AdversarialNet`]) — a programmable model used to
//!   build the Theorem 2 witness schedules and failure-injection tests;
//!   it may delay arbitrarily and (unlike partial synchrony) drop messages,
//!   modelling crashed links or a fully asynchronous adversary.
//!
//! Delays are quantised into `buckets` equal steps so that the same model
//! serves Monte-Carlo runs (many buckets, random oracle) and exhaustive
//! schedule exploration (two or three buckets, replay oracle).

use crate::oracle::{ChoiceTag, Oracle};
use crate::process::Pid;
use crate::time::{SimDuration, SimTime};

/// Metadata of an in-flight message (payload is passed separately so models
/// that don't inspect contents stay monomorphisation-friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeMeta {
    /// Sender process id.
    pub from: Pid,
    /// Recipient process id.
    pub to: Pid,
    /// Real simulation time at which the send effect executed.
    pub sent_at: SimTime,
    /// Global sequence number of the send (unique, monotone).
    pub seq: u64,
}

/// A delivery decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver at the given real time (≥ send time).
    At(SimTime),
    /// Never deliver (dropped). Only adversarial models may do this.
    Never,
}

/// A network timing model. `M` is the message type; models may inspect
/// payloads (an adversary sees everything on the wire — signatures, not
/// secrecy, protect the protocols).
pub trait NetModel<M>: 'static {
    /// Decides when (if ever) the message in `meta` is delivered.
    fn route(&mut self, meta: &EnvelopeMeta, msg: &M, oracle: &mut dyn Oracle) -> Delivery;

    /// Clone into a box (the schedule explorer forks simulations).
    fn box_clone(&self) -> Box<dyn NetModel<M>>;
}

impl<M: 'static> Clone for Box<dyn NetModel<M>> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Picks a delay in `[min, max]` quantised into `buckets` steps via the
/// oracle. `buckets = 1` always yields `max` (the worst case — pessimistic
/// by default). The choice is tagged with the recipient pid (`to`) so
/// recording oracles can answer "which process does this choice touch"
/// without replaying (the reduced explorer's dead-branch query).
fn quantised_delay(
    min: SimDuration,
    max: SimDuration,
    buckets: usize,
    oracle: &mut dyn Oracle,
    to: usize,
) -> SimDuration {
    debug_assert!(min <= max);
    if min == max || buckets <= 1 {
        return max;
    }
    let span = max - min;
    let idx = oracle.choose_for(buckets, ChoiceTag::delay(to)) as u64;
    // idx = buckets-1 ⇒ exactly max; idx = 0 ⇒ exactly min.
    min + SimDuration::from_ticks(span.ticks() * idx / (buckets as u64 - 1))
}

/// Synchronous network: delivery within `[delta_min, delta_max]`, always.
#[derive(Debug, Clone)]
pub struct SyncNet {
    /// Minimum delivery delay.
    pub delta_min: SimDuration,
    /// Maximum delivery delay.
    pub delta_max: SimDuration,
    /// Delay quantisation (1 means always the maximum).
    pub buckets: usize,
}

impl SyncNet {
    /// Uniform-ish delays in `[0, delta]` at the given resolution.
    pub fn new(delta: SimDuration, buckets: usize) -> Self {
        SyncNet {
            delta_min: SimDuration::ZERO,
            delta_max: delta,
            buckets,
        }
    }

    /// Every message takes exactly δ (deterministic worst case).
    pub fn worst_case(delta: SimDuration) -> Self {
        SyncNet {
            delta_min: delta,
            delta_max: delta,
            buckets: 1,
        }
    }
}

impl<M: 'static> NetModel<M> for SyncNet {
    fn route(&mut self, meta: &EnvelopeMeta, _msg: &M, oracle: &mut dyn Oracle) -> Delivery {
        let d = quantised_delay(
            self.delta_min,
            self.delta_max,
            self.buckets,
            oracle,
            meta.to,
        );
        Delivery::At(meta.sent_at + d)
    }

    fn box_clone(&self) -> Box<dyn NetModel<M>> {
        Box::new(self.clone())
    }
}

/// What the adversary does with a message sent before GST.
#[derive(Debug, Clone)]
pub enum PreGstPolicy {
    /// Hold every pre-GST message until the last permitted moment
    /// (`max(sent, GST) + δ`) — the canonical DLS adversary.
    MaxDelay,
    /// Choose a delay bucket in `[0, (GST − sent) + δ]` per message.
    Quantised {
        /// Delay quantisation (1 means always the maximum).
        buckets: usize,
    },
    /// Delay only messages between the given ordered pairs to the maximum;
    /// everything else behaves synchronously. Used for targeted partition
    /// witnesses (e.g. "cut Bob off until GST").
    TargetPairs {
        /// Directed (from, to) pairs the adversary targets.
        pairs: Vec<(Pid, Pid)>,
    },
}

/// Partially synchronous network in the DLS "unknown GST" formulation:
/// a message sent at `t` is delivered no later than `max(t, GST) + δ`.
#[derive(Debug, Clone)]
pub struct PartialSyncNet {
    /// Global Stabilisation Time: from here on, delays are bounded.
    pub gst: SimTime,
    /// Post-GST delivery bound.
    pub delta: SimDuration,
    /// What the adversary does with pre-GST messages.
    pub policy: PreGstPolicy,
    /// Resolution for post-GST delays.
    pub buckets: usize,
}

impl PartialSyncNet {
    /// Canonical worst-case adversary: everything pre-GST held to the limit.
    pub fn new(gst: SimTime, delta: SimDuration) -> Self {
        PartialSyncNet {
            gst,
            delta,
            policy: PreGstPolicy::MaxDelay,
            buckets: 1,
        }
    }

    /// Randomised pre- and post-GST delays at the given resolution.
    pub fn randomized(gst: SimTime, delta: SimDuration, buckets: usize) -> Self {
        PartialSyncNet {
            gst,
            delta,
            policy: PreGstPolicy::Quantised { buckets },
            buckets,
        }
    }

    /// Targeted partition of specific directed pairs until GST.
    pub fn partition(gst: SimTime, delta: SimDuration, pairs: Vec<(Pid, Pid)>) -> Self {
        PartialSyncNet {
            gst,
            delta,
            policy: PreGstPolicy::TargetPairs { pairs },
            buckets: 1,
        }
    }

    /// The DLS delivery deadline for a message sent at `t`.
    pub fn deadline(&self, sent_at: SimTime) -> SimTime {
        sent_at.max(self.gst) + self.delta
    }
}

impl<M: 'static> NetModel<M> for PartialSyncNet {
    fn route(&mut self, meta: &EnvelopeMeta, _msg: &M, oracle: &mut dyn Oracle) -> Delivery {
        let deadline = self.deadline(meta.sent_at);
        if meta.sent_at >= self.gst {
            // After GST the network is synchronous with bound δ.
            let d = quantised_delay(SimDuration::ZERO, self.delta, self.buckets, oracle, meta.to);
            return Delivery::At(meta.sent_at + d);
        }
        let at = match &self.policy {
            PreGstPolicy::MaxDelay => deadline,
            PreGstPolicy::Quantised { buckets } => {
                let span = deadline - meta.sent_at;
                meta.sent_at + quantised_delay(SimDuration::ZERO, span, *buckets, oracle, meta.to)
            }
            PreGstPolicy::TargetPairs { pairs } => {
                if pairs.contains(&(meta.from, meta.to)) {
                    deadline
                } else {
                    let d = quantised_delay(
                        SimDuration::ZERO,
                        self.delta,
                        self.buckets,
                        oracle,
                        meta.to,
                    );
                    meta.sent_at + d
                }
            }
        };
        Delivery::At(at)
    }

    fn box_clone(&self) -> Box<dyn NetModel<M>> {
        Box::new(self.clone())
    }
}

/// Fully programmable adversary; used for impossibility witnesses and
/// failure injection. The rule may delay arbitrarily or drop.
pub struct AdversarialNet<M> {
    #[allow(clippy::type_complexity)]
    rule: std::sync::Arc<dyn Fn(&EnvelopeMeta, &M, &mut dyn Oracle) -> Delivery + Send + Sync>,
}

impl<M> Clone for AdversarialNet<M> {
    fn clone(&self) -> Self {
        AdversarialNet {
            rule: self.rule.clone(),
        }
    }
}

impl<M> AdversarialNet<M> {
    /// Builds an adversary from a routing rule.
    pub fn new(
        rule: impl Fn(&EnvelopeMeta, &M, &mut dyn Oracle) -> Delivery + Send + Sync + 'static,
    ) -> Self {
        AdversarialNet {
            rule: std::sync::Arc::new(rule),
        }
    }

    /// Drops every message matching `pred`; the rest behave synchronously
    /// with bound `delta`.
    pub fn dropping(
        delta: SimDuration,
        pred: impl Fn(&EnvelopeMeta, &M) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self::new(move |meta, msg, _o| {
            if pred(meta, msg) {
                Delivery::Never
            } else {
                Delivery::At(meta.sent_at + delta)
            }
        })
    }

    /// Delays every message matching `pred` by `extra` beyond `delta`.
    pub fn delaying(
        delta: SimDuration,
        extra: SimDuration,
        pred: impl Fn(&EnvelopeMeta, &M) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self::new(move |meta, msg, _o| {
            let d = if pred(meta, msg) {
                delta + extra
            } else {
                delta
            };
            Delivery::At(meta.sent_at + d)
        })
    }
}

impl<M: 'static> NetModel<M> for AdversarialNet<M> {
    fn route(&mut self, meta: &EnvelopeMeta, msg: &M, oracle: &mut dyn Oracle) -> Delivery {
        (self.rule)(meta, msg, oracle)
    }

    fn box_clone(&self) -> Box<dyn NetModel<M>> {
        Box::new(self.clone())
    }
}

/// Message-level fault-injection parameters, layered over any inner model
/// by [`FaultyNet`]. All probabilities are per-mille (‰, `0..=1000`) and
/// drawn through the run's [`Oracle`], so fault patterns are deterministic
/// per seed and reproducible across thread counts.
///
/// This is the network half of a simulation *fault plan*: the Monte-Carlo
/// simulator composes it with Byzantine participant substitutions and
/// clock-drift sampling. It is intended for seeded Monte-Carlo runs; under
/// exhaustive exploration each fault draw multiplies the choice tree by
/// 1000, so explorers should keep [`NetFaults::NONE`] (which draws
/// nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetFaults {
    /// Per-message drop probability in per-mille. Dropping violates the
    /// synchrony assumption of Theorem 1 — protocols may lose liveness but
    /// must keep every safety/conservation property.
    pub drop_permille: u32,
    /// Per-message probability (per-mille) of adding extra delay beyond
    /// the inner model's delivery time.
    pub delay_permille: u32,
    /// Maximum extra delay added when the delay fault fires.
    pub extra_delay: SimDuration,
    /// Quantisation of the extra delay (≤ 1 ⇒ always the maximum).
    pub delay_buckets: usize,
}

impl NetFaults {
    /// No faults: [`FaultyNet`] becomes a transparent pass-through that
    /// consumes no oracle choices.
    pub const NONE: NetFaults = NetFaults {
        drop_permille: 0,
        delay_permille: 0,
        extra_delay: SimDuration::ZERO,
        delay_buckets: 1,
    };

    /// True when no fault can ever fire.
    pub fn is_none(&self) -> bool {
        self.drop_permille == 0 && (self.delay_permille == 0 || self.extra_delay.is_zero())
    }

    /// Per-mille resolution of the probability draws.
    const RESOLUTION: usize = 1000;

    /// Draws one per-mille event (true ⇒ the fault fires). No oracle
    /// choice is consumed when the probability is 0.
    fn fires(permille: u32, oracle: &mut dyn Oracle) -> bool {
        permille > 0 && oracle.choose(Self::RESOLUTION) < permille as usize
    }
}

/// Fault-injecting wrapper around any [`NetModel`]: first the inner model
/// decides the nominal delivery, then bounded extra delay and message
/// drops are applied on top, driven by the oracle per [`NetFaults`].
pub struct FaultyNet<M> {
    inner: Box<dyn NetModel<M>>,
    faults: NetFaults,
}

impl<M: 'static> FaultyNet<M> {
    /// Layers `faults` over `inner`. Panics if a probability exceeds
    /// 1000‰ — a silent clamp would turn a per-cent/per-mille mix-up into
    /// an always-firing fault.
    pub fn new(inner: Box<dyn NetModel<M>>, faults: NetFaults) -> Self {
        assert!(
            faults.drop_permille <= 1000 && faults.delay_permille <= 1000,
            "NetFaults probabilities are per-mille (0..=1000): {faults:?}"
        );
        FaultyNet { inner, faults }
    }

    /// The fault parameters.
    pub fn faults(&self) -> NetFaults {
        self.faults
    }
}

impl<M: 'static> NetModel<M> for FaultyNet<M> {
    fn route(&mut self, meta: &EnvelopeMeta, msg: &M, oracle: &mut dyn Oracle) -> Delivery {
        let nominal = self.inner.route(meta, msg, oracle);
        let at = match nominal {
            Delivery::At(t) => t,
            Delivery::Never => return Delivery::Never,
        };
        // Draw order is fixed (drop, then delay, then bucket) so a given
        // oracle seed yields the same fault pattern regardless of which
        // faults actually fire.
        if NetFaults::fires(self.faults.drop_permille, oracle) {
            return Delivery::Never;
        }
        if !self.faults.extra_delay.is_zero()
            && NetFaults::fires(self.faults.delay_permille, oracle)
        {
            let extra = quantised_delay(
                SimDuration::ZERO,
                self.faults.extra_delay,
                self.faults.delay_buckets.max(1),
                oracle,
                meta.to,
            );
            return Delivery::At(at + extra);
        }
        Delivery::At(at)
    }

    fn box_clone(&self) -> Box<dyn NetModel<M>> {
        Box::new(FaultyNet {
            inner: self.inner.clone(),
            faults: self.faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FixedOracle, RandomOracle};

    fn meta(sent: u64) -> EnvelopeMeta {
        EnvelopeMeta {
            from: 0,
            to: 1,
            sent_at: SimTime::from_ticks(sent),
            seq: 0,
        }
    }

    #[test]
    fn sync_respects_bounds() {
        let mut net = SyncNet::new(SimDuration::from_ticks(100), 16);
        let mut o = RandomOracle::seeded(1);
        for i in 0..200 {
            match NetModel::<u32>::route(&mut net, &meta(i), &0u32, &mut o) {
                Delivery::At(t) => {
                    assert!(t >= SimTime::from_ticks(i));
                    assert!(t <= SimTime::from_ticks(i + 100));
                }
                Delivery::Never => panic!("sync net never drops"),
            }
        }
    }

    #[test]
    fn sync_worst_case_is_exactly_delta() {
        let mut net = SyncNet::worst_case(SimDuration::from_ticks(70));
        let mut o = RandomOracle::seeded(1);
        match NetModel::<u32>::route(&mut net, &meta(5), &0u32, &mut o) {
            Delivery::At(t) => assert_eq!(t, SimTime::from_ticks(75)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn quantised_delay_hits_extremes() {
        let min = SimDuration::from_ticks(10);
        let max = SimDuration::from_ticks(20);
        let mut lo = FixedOracle::minimal();
        let mut hi = FixedOracle::maximal();
        assert_eq!(quantised_delay(min, max, 3, &mut lo, 1), min);
        assert_eq!(quantised_delay(min, max, 3, &mut hi, 1), max);
        // Middle bucket of 3 is the midpoint.
        let mut mid = FixedOracle::new(1);
        assert_eq!(
            quantised_delay(min, max, 3, &mut mid, 1),
            SimDuration::from_ticks(15)
        );
    }

    #[test]
    fn partial_sync_pre_gst_held_to_deadline() {
        let gst = SimTime::from_ticks(1_000);
        let delta = SimDuration::from_ticks(50);
        let mut net = PartialSyncNet::new(gst, delta);
        let mut o = RandomOracle::seeded(2);
        match NetModel::<u32>::route(&mut net, &meta(10), &0u32, &mut o) {
            Delivery::At(t) => assert_eq!(t, SimTime::from_ticks(1_050)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn partial_sync_post_gst_is_synchronous() {
        let gst = SimTime::from_ticks(1_000);
        let delta = SimDuration::from_ticks(50);
        let mut net = PartialSyncNet::new(gst, delta);
        let mut o = RandomOracle::seeded(2);
        match NetModel::<u32>::route(&mut net, &meta(2_000), &0u32, &mut o) {
            Delivery::At(t) => {
                assert!(t >= SimTime::from_ticks(2_000) && t <= SimTime::from_ticks(2_050))
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn partial_sync_never_violates_dls_bound() {
        let gst = SimTime::from_ticks(500);
        let delta = SimDuration::from_ticks(30);
        let mut net = PartialSyncNet::randomized(gst, delta, 8);
        let mut o = RandomOracle::seeded(3);
        for i in (0..1_000).step_by(37) {
            let m = meta(i);
            match NetModel::<u32>::route(&mut net, &m, &0u32, &mut o) {
                Delivery::At(t) => assert!(t <= net.deadline(m.sent_at), "sent {i}"),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn partial_sync_partition_targets_only_pairs() {
        let gst = SimTime::from_ticks(1_000);
        let delta = SimDuration::from_ticks(10);
        let mut net = PartialSyncNet::partition(gst, delta, vec![(0, 1)]);
        let mut o = RandomOracle::seeded(4);
        // Targeted pair: held until GST + δ.
        match NetModel::<u32>::route(&mut net, &meta(0), &0u32, &mut o) {
            Delivery::At(t) => assert_eq!(t, SimTime::from_ticks(1_010)),
            _ => unreachable!(),
        }
        // Other direction: prompt.
        let back = EnvelopeMeta {
            from: 1,
            to: 0,
            sent_at: SimTime::ZERO,
            seq: 1,
        };
        match NetModel::<u32>::route(&mut net, &back, &0u32, &mut o) {
            Delivery::At(t) => assert!(t <= SimTime::from_ticks(10)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn adversarial_drop_and_delay() {
        let mut dropper =
            AdversarialNet::dropping(SimDuration::from_ticks(5), |m: &EnvelopeMeta, _: &u32| {
                m.to == 9
            });
        let mut o = RandomOracle::seeded(5);
        let victim = EnvelopeMeta {
            from: 0,
            to: 9,
            sent_at: SimTime::ZERO,
            seq: 0,
        };
        assert_eq!(dropper.route(&victim, &0u32, &mut o), Delivery::Never);
        assert_eq!(
            dropper.route(&meta(0), &0u32, &mut o),
            Delivery::At(SimTime::from_ticks(5))
        );

        let mut delayer = AdversarialNet::delaying(
            SimDuration::from_ticks(5),
            SimDuration::from_ticks(100),
            |_m: &EnvelopeMeta, msg: &u32| *msg == 7,
        );
        assert_eq!(
            delayer.route(&meta(0), &7u32, &mut o),
            Delivery::At(SimTime::from_ticks(105))
        );
        assert_eq!(
            delayer.route(&meta(0), &8u32, &mut o),
            Delivery::At(SimTime::from_ticks(5))
        );
    }

    #[test]
    fn faulty_net_none_is_transparent() {
        let delta = SimDuration::from_ticks(70);
        let mut plain = SyncNet::worst_case(delta);
        let mut wrapped = FaultyNet::new(Box::new(SyncNet::worst_case(delta)), NetFaults::NONE);
        assert!(NetFaults::NONE.is_none());
        let mut o1 = RandomOracle::seeded(1);
        let mut o2 = RandomOracle::seeded(1);
        for i in 0..50 {
            let a = NetModel::<u32>::route(&mut plain, &meta(i), &0u32, &mut o1);
            let b = wrapped.route(&meta(i), &0u32, &mut o2);
            assert_eq!(a, b, "NONE must not perturb delivery or the oracle");
        }
    }

    #[test]
    fn faulty_net_drop_rate_and_delay_bounds() {
        let delta = SimDuration::from_ticks(10);
        let extra = SimDuration::from_ticks(400);
        let faults = NetFaults {
            drop_permille: 250,
            delay_permille: 500,
            extra_delay: extra,
            delay_buckets: 8,
        };
        assert!(!faults.is_none());
        let mut net = FaultyNet::new(Box::new(SyncNet::worst_case(delta)), faults);
        let mut o = RandomOracle::seeded(7);
        let (mut dropped, mut delayed, total) = (0usize, 0usize, 4_000u64);
        for i in 0..total {
            match net.route(&meta(i), &0u32, &mut o) {
                Delivery::Never => dropped += 1,
                Delivery::At(t) => {
                    let nominal = SimTime::from_ticks(i) + delta;
                    assert!(t >= nominal, "faults never deliver early");
                    assert!(t <= nominal + extra, "extra delay is bounded");
                    if t > nominal {
                        delayed += 1;
                    }
                }
            }
        }
        // 25% drop, 50% of survivors delayed (minus the zero bucket):
        // generous windows keep this seed-stable without being vacuous.
        assert!((700..=1_300).contains(&dropped), "dropped {dropped}");
        assert!(delayed >= 800, "delayed {delayed}");
    }

    #[test]
    fn faulty_net_deterministic_per_seed() {
        let faults = NetFaults {
            drop_permille: 100,
            delay_permille: 300,
            extra_delay: SimDuration::from_ticks(50),
            delay_buckets: 4,
        };
        let run = |seed: u64| -> Vec<Delivery> {
            let mut net = FaultyNet::new(
                Box::new(SyncNet::new(SimDuration::from_ticks(20), 8)),
                faults,
            );
            let mut o = RandomOracle::seeded(seed);
            (0..200)
                .map(|i| net.route(&meta(i), &0u32, &mut o))
                .collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "per-mille")]
    fn faulty_net_rejects_out_of_range_probabilities() {
        let _ = FaultyNet::<u32>::new(
            Box::new(SyncNet::worst_case(SimDuration::from_ticks(1))),
            NetFaults {
                drop_permille: 10_000,
                ..NetFaults::NONE
            },
        );
    }

    #[test]
    fn faulty_net_preserves_inner_drops() {
        let faults = NetFaults {
            delay_permille: 1_000,
            extra_delay: SimDuration::from_ticks(9),
            ..NetFaults::NONE
        };
        let inner =
            AdversarialNet::dropping(SimDuration::from_ticks(5), |m: &EnvelopeMeta, _: &u32| {
                m.to == 9
            });
        let mut net = FaultyNet::new(Box::new(inner), faults);
        let mut o = RandomOracle::seeded(5);
        let victim = EnvelopeMeta {
            from: 0,
            to: 9,
            sent_at: SimTime::ZERO,
            seq: 0,
        };
        assert_eq!(net.route(&victim, &0u32, &mut o), Delivery::Never);
        // Non-victims survive but always pick up the (certain) extra delay.
        match net.route(&meta(0), &0u32, &mut o) {
            Delivery::At(t) => assert!(t > SimTime::from_ticks(5)),
            Delivery::Never => panic!("inner model delivers this one"),
        }
    }
}
