//! Nondeterminism oracles.
//!
//! Every nondeterministic choice the simulator makes — message delay bucket,
//! computation-time bucket, tie order — is funnelled through a single
//! [`Oracle`] trait. This gives three execution modes from one engine:
//!
//! * [`RandomOracle`] — seeded pseudo-random choices: Monte-Carlo sweeps;
//! * [`FixedOracle`] — always the same index: extremal/deterministic runs
//!   (e.g. "all messages take the maximum delay");
//! * [`ReplayOracle`] — replays a recorded choice prefix and records the
//!   branching degree at each step, which is what the exhaustive schedule
//!   explorer ([`crate::explore`]) iterates over.
//!
//! The oracle only ever picks **indices into finite option sets**; the
//! semantic meaning of an index (a delay bucket, an ordering) stays with the
//! component that asked. Quantising delays into buckets keeps random and
//! exhaustive modes semantically identical, merely at different resolutions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a nondeterministic choice decides, and which process it touches.
///
/// The engine and network models tag every `choose` call with the process
/// the choice affects — the *recipient* for a message-delay bucket, the
/// *handler's* process for a σ computation-time draw. This is the cheap
/// "which pid does choice `i` touch" query the reduced explorer needs: it
/// can tell that a delay choice for a message addressed to an
/// already-halted process decides nothing, without replaying anything
/// (see [`crate::engine::EngineConfig::prune_dead_sends`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceKind {
    /// Network delay bucket for a message addressed to the tagged pid.
    Delay,
    /// σ computation-time bucket charged to the tagged pid's handler.
    Sigma,
    /// Anything else (fault draws, adversarial reorderings, …).
    Other,
}

/// Tag carried by [`Oracle::choose_for`]: the choice's kind and, when
/// known, the process it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceTag {
    /// What the choice decides.
    pub kind: ChoiceKind,
    /// The process the choice touches, when attributable to one.
    pub pid: Option<usize>,
}

impl ChoiceTag {
    /// A delay-bucket choice for a message addressed to `to`.
    pub fn delay(to: usize) -> Self {
        ChoiceTag {
            kind: ChoiceKind::Delay,
            pid: Some(to),
        }
    }

    /// A σ-bucket choice charged to `pid`'s handler.
    pub fn sigma(pid: usize) -> Self {
        ChoiceTag {
            kind: ChoiceKind::Sigma,
            pid: Some(pid),
        }
    }

    /// An untagged choice.
    pub fn other() -> Self {
        ChoiceTag {
            kind: ChoiceKind::Other,
            pid: None,
        }
    }
}

/// Source of all scheduler-level nondeterminism.
pub trait Oracle {
    /// Chooses an index in `0..options`. `options` must be ≥ 1.
    fn choose(&mut self, options: usize) -> usize;

    /// [`Oracle::choose`] with a [`ChoiceTag`] saying what the choice
    /// decides and which process it touches. The default ignores the tag;
    /// recording oracles ([`ReplayOracle`]) keep it alongside the log so
    /// explorers can query per-choice pids without replaying.
    fn choose_for(&mut self, options: usize, tag: ChoiceTag) -> usize {
        let _ = tag;
        self.choose(options)
    }
}

/// Seeded pseudo-random choices.
pub struct RandomOracle {
    rng: StdRng,
}

impl RandomOracle {
    /// Creates an oracle from a seed; equal seeds give equal runs.
    pub fn seeded(seed: u64) -> Self {
        RandomOracle {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Oracle for RandomOracle {
    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1, "oracle asked to choose among zero options");
        if options <= 1 {
            0
        } else {
            self.rng.gen_range(0..options)
        }
    }
}

/// Always returns the same index, clamped to the option count. Index 0 gives
/// "minimum" behaviour everywhere, `usize::MAX` gives "maximum".
pub struct FixedOracle {
    index: usize,
}

impl FixedOracle {
    /// Always choose `index` (clamped to `options − 1`).
    pub fn new(index: usize) -> Self {
        FixedOracle { index }
    }

    /// Always the first option (minimal delays).
    pub fn minimal() -> Self {
        Self::new(0)
    }

    /// Always the last option (maximal delays).
    pub fn maximal() -> Self {
        Self::new(usize::MAX)
    }
}

impl Oracle for FixedOracle {
    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1);
        self.index.min(options.saturating_sub(1))
    }
}

/// Replays a prescribed prefix of choices, then defaults to 0; records the
/// number of options seen at every step so a driver can enumerate the
/// complete choice tree lexicographically.
pub struct ReplayOracle {
    prefix: Vec<usize>,
    /// `(chosen, options)` for every step of the current run.
    pub log: Vec<(usize, usize)>,
    /// The [`ChoiceTag`] of every logged step, aligned with `log`.
    tags: Vec<ChoiceTag>,
}

impl ReplayOracle {
    /// Replays `prefix`, then chooses 0.
    pub fn new(prefix: Vec<usize>) -> Self {
        ReplayOracle {
            log: Vec::with_capacity(prefix.len() + 16),
            tags: Vec::with_capacity(prefix.len() + 16),
            prefix,
        }
    }

    /// True once every prescribed prefix choice has been consumed — i.e.
    /// the run has left replayed territory and is making fresh choices.
    /// The reduced explorer arms state-hash deduplication exactly here:
    /// states reached *while replaying* were inserted by earlier runs, so
    /// probing them would falsely prune the branch being opened.
    pub fn replay_done(&self) -> bool {
        self.log.len() >= self.prefix.len()
    }

    /// The [`ChoiceTag`] recorded for logged step `i` (the "which pid does
    /// choice `i` touch" query).
    pub fn tag(&self, i: usize) -> Option<ChoiceTag> {
        self.tags.get(i).copied()
    }

    fn pick(&mut self, options: usize, tag: ChoiceTag) -> usize {
        debug_assert!(options >= 1);
        let step = self.log.len();
        let choice = if step < self.prefix.len() {
            // Replay can meet a smaller option set than when recorded if the
            // schedule diverged; clamp defensively (explorer treats the run
            // as a fresh leaf either way).
            self.prefix[step].min(options - 1)
        } else {
            0
        };
        self.log.push((choice, options));
        self.tags.push(tag);
        choice
    }

    /// Computes the lexicographically next path after this run's log, or
    /// `None` when the tree is exhausted. Standard DFS path enumeration:
    /// find the deepest step that can still be incremented, bump it, drop
    /// the suffix.
    pub fn next_path(&self) -> Option<Vec<usize>> {
        self.next_path_bounded(usize::MAX)
    }

    /// Like [`ReplayOracle::next_path`], but considering only the first
    /// `depth` steps of the log — i.e. the next path in the tree truncated
    /// at `depth`. The parallel explorer uses this to enumerate disjoint
    /// subtree prefixes without walking whole subtrees.
    pub fn next_path_bounded(&self, depth: usize) -> Option<Vec<usize>> {
        let upto = self.log.len().min(depth);
        let mut path: Vec<usize> = self.log[..upto].iter().map(|&(c, _)| c).collect();
        loop {
            let (last_choice, last_options) = match path.len() {
                0 => return None,
                n => {
                    let (_, o) = self.log[n - 1];
                    (path[n - 1], o)
                }
            };
            if last_choice + 1 < last_options {
                let n = path.len();
                path[n - 1] += 1;
                return Some(path);
            }
            path.pop();
        }
    }
}

impl Oracle for ReplayOracle {
    fn choose(&mut self, options: usize) -> usize {
        self.pick(options, ChoiceTag::other())
    }

    fn choose_for(&mut self, options: usize, tag: ChoiceTag) -> usize {
        self.pick(options, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = RandomOracle::seeded(9);
        let mut b = RandomOracle::seeded(9);
        let mut c = RandomOracle::seeded(10);
        let seq_a: Vec<usize> = (0..64).map(|_| a.choose(5)).collect();
        let seq_b: Vec<usize> = (0..64).map(|_| b.choose(5)).collect();
        let seq_c: Vec<usize> = (0..64).map(|_| c.choose(5)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
        assert!(seq_a.iter().all(|&x| x < 5));
    }

    #[test]
    fn fixed_clamps() {
        let mut max = FixedOracle::maximal();
        assert_eq!(max.choose(4), 3);
        assert_eq!(max.choose(1), 0);
        let mut min = FixedOracle::minimal();
        assert_eq!(min.choose(4), 0);
        let mut mid = FixedOracle::new(2);
        assert_eq!(mid.choose(10), 2);
        assert_eq!(mid.choose(2), 1);
    }

    #[test]
    fn replay_replays_then_zero() {
        let mut o = ReplayOracle::new(vec![2, 1]);
        assert!(!o.replay_done());
        assert_eq!(o.choose(4), 2);
        assert_eq!(o.choose(3), 1);
        assert!(o.replay_done());
        assert_eq!(o.choose(3), 0);
        assert_eq!(o.log, vec![(2, 4), (1, 3), (0, 3)]);
    }

    #[test]
    fn replay_records_choice_tags() {
        let mut o = ReplayOracle::new(vec![1]);
        assert_eq!(o.choose_for(2, ChoiceTag::delay(7)), 1);
        assert_eq!(o.choose_for(4, ChoiceTag::sigma(3)), 0);
        assert_eq!(o.choose(2), 0);
        assert_eq!(o.tag(0), Some(ChoiceTag::delay(7)));
        assert_eq!(o.tag(0).unwrap().pid, Some(7));
        assert_eq!(o.tag(1), Some(ChoiceTag::sigma(3)));
        assert_eq!(o.tag(2), Some(ChoiceTag::other()));
        assert_eq!(o.tag(3), None);
    }

    #[test]
    fn default_choose_for_delegates() {
        let mut o = FixedOracle::maximal();
        assert_eq!(o.choose_for(4, ChoiceTag::delay(0)), 3);
    }

    #[test]
    fn next_path_enumerates_whole_tree() {
        // Tree: 3 steps of 2 options each → 8 leaves.
        let mut seen = Vec::new();
        let mut path = Vec::new();
        loop {
            let mut o = ReplayOracle::new(path.clone());
            let leaf: Vec<usize> = (0..3).map(|_| o.choose(2)).collect();
            seen.push(leaf);
            match o.next_path() {
                Some(p) => path = p,
                None => break,
            }
        }
        assert_eq!(seen.len(), 8);
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "all leaves distinct");
    }

    #[test]
    fn next_path_bounded_enumerates_prefixes() {
        // 3 binary steps; bounding at depth 2 must enumerate exactly the
        // four length-2 prefixes, skipping the third level entirely.
        let mut prefixes = Vec::new();
        let mut path: Vec<usize> = Vec::new();
        loop {
            let mut o = ReplayOracle::new(path.clone());
            let _: Vec<usize> = (0..3).map(|_| o.choose(2)).collect();
            prefixes.push(o.log.iter().take(2).map(|&(c, _)| c).collect::<Vec<_>>());
            match o.next_path_bounded(2) {
                Some(p) => {
                    assert!(p.len() <= 2);
                    path = p;
                }
                None => break,
            }
        }
        assert_eq!(
            prefixes,
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
    }

    #[test]
    fn next_path_handles_uneven_branching() {
        // Step 1 has 2 options; under option 0 one more binary step,
        // under option 1 the run ends immediately.
        let mut count = 0;
        let mut path: Vec<usize> = Vec::new();
        loop {
            let mut o = ReplayOracle::new(path.clone());
            let first = o.choose(2);
            if first == 0 {
                let _ = o.choose(2);
            }
            count += 1;
            match o.next_path() {
                Some(p) => path = p,
                None => break,
            }
        }
        assert_eq!(count, 3, "paths: [0,0], [0,1], [1]");
    }
}
