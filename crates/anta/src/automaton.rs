//! Data-driven timed automata — the paper's specification formalism.
//!
//! §4: *"There is one automaton for each participant in the protocol …
//! It has a finite number of states, depicted as circles, and transitions
//! between them. Each automaton keeps an internal clock, whose value … is
//! stored in the variable `now`. In case a transition occurs that is
//! labelled by an assignment `x := now`, the variable `x` will remember the
//! point in time when the transition took place. An automaton spends a
//! bounded amount of time calculating in each grey (output) state, and
//! leaves it by performing the action `s(id, m)`. … When an automaton is in
//! a white (input) state, it stays there (possibly forever) until one of its
//! outgoing transitions becomes enabled. … The time-out transition
//! `now ≥ u + a_i` is enabled when this formula evaluates to true. An input
//! transition `r(id, m)` is triggered by the receipt of message `m` from the
//! automaton `id`."*
//!
//! [`AutomatonSpec`] encodes exactly that structure as *data* (states,
//! transitions, guards, clock-variable assignments), and
//! [`AutomatonProcess`] interprets a spec as a [`Process`] on the engine.
//! Encoding Figure 2 as data rather than hand-written handlers lets the
//! test-suite cross-check the executable protocol against the paper's
//! diagram (state reachability, transition coverage) and lets the schedule
//! explorer enumerate its behaviours.
//!
//! Message buffering: deliveries that no transition of the *current* state
//! can consume are buffered and re-offered after every state change — the
//! standard asynchronous-network reading of `r(id, m)` (the network does not
//! destroy messages because the receiver is momentarily elsewhere; see e.g.
//! Chloe, who may receive `G(d_i)` and `P(a_{i-1})` in either order).

use crate::process::{Ctx, Message, Pid, Process, TimerId};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Index of a state within an automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// White (input) or grey (output) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// White: waits for a receive or time-out transition to become enabled.
    Input,
    /// Grey: performs its single send and moves on (bounded compute time is
    /// charged by the engine).
    Output,
}

/// Variable store of one automaton: clock variables (`x := now`) and integer
/// registers (for values carried by messages, e.g. a promise's deadline).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarStore {
    /// Clock variables (`x := now` targets).
    pub clocks: Vec<SimTime>,
    /// Integer registers (values carried by messages).
    pub regs: Vec<i64>,
}

/// Guard over an incoming message.
pub type GuardFn<M> = Arc<dyn Fn(&M, &VarStore) -> bool + Send + Sync>;
/// Assignment executed when a transition fires: receives the store, the
/// local `now`, and the consumed message (for receive transitions).
pub type AssignFn<M> = Arc<dyn Fn(&mut VarStore, SimTime, Option<&M>) + Send + Sync>;
/// Constructor of an outgoing message from the variable store.
pub type MakeFn<M> = Arc<dyn Fn(&VarStore) -> M + Send + Sync>;

/// A transition's triggering action.
#[derive(Clone)]
pub enum Action<M> {
    /// `r(from, m)` with a content guard.
    Receive {
        /// Sender process id.
        from: Pid,
        /// Content guard the message must satisfy.
        guard: GuardFn<M>,
    },
    /// `now ≥ clocks[var] + delay`.
    Timeout {
        /// Clock-variable index the timeout reads.
        var: usize,
        /// Offset added to the clock variable.
        delay: SimDuration,
    },
    /// `s(to, make(store))` — only from output states.
    Send {
        /// Recipient process id.
        to: Pid,
        /// Constructs the outgoing message from the variable store.
        make: MakeFn<M>,
    },
}

impl<M> std::fmt::Debug for Action<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Receive { from, .. } => write!(f, "r({from}, …)"),
            Action::Timeout { var, delay } => write!(f, "now ≥ x{var} + {delay}"),
            Action::Send { to, .. } => write!(f, "s({to}, …)"),
        }
    }
}

/// One transition of the automaton.
#[derive(Clone)]
pub struct Transition<M> {
    /// Sender process id.
    pub from: StateId,
    /// Recipient process id.
    pub to: StateId,
    /// The triggering action.
    pub action: Action<M>,
    /// Optional `x := now` / register assignments on firing.
    pub assign: Option<AssignFn<M>>,
}

/// A complete automaton specification.
#[derive(Clone)]
pub struct AutomatonSpec<M> {
    /// Human-readable name (diagrams, traces).
    pub name: String,
    state_names: Vec<String>,
    state_kinds: Vec<StateKind>,
    transitions: Vec<Transition<M>>,
    /// Transitions indexed by source state.
    by_state: Vec<Vec<usize>>,
    initial: StateId,
    n_clocks: usize,
    n_regs: usize,
}

/// Errors detected by [`AutomatonBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomatonError {
    /// An output (grey) state must have exactly one outgoing transition,
    /// and it must be a send.
    BadOutputState(String),
    /// An input (white) state may not have outgoing send transitions.
    SendFromInputState(String),
    /// A transition references a state that does not exist.
    DanglingState(usize),
    /// A timeout references a clock variable ≥ `n_clocks`.
    BadClockVar(usize),
    /// No states were declared.
    Empty,
}

impl std::fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutomatonError::BadOutputState(s) => {
                write!(
                    f,
                    "output state `{s}` must have exactly one send transition"
                )
            }
            AutomatonError::SendFromInputState(s) => {
                write!(f, "input state `{s}` has a send transition")
            }
            AutomatonError::DanglingState(i) => write!(f, "transition references state {i}"),
            AutomatonError::BadClockVar(v) => write!(f, "timeout uses undeclared clock var {v}"),
            AutomatonError::Empty => write!(f, "automaton has no states"),
        }
    }
}

impl std::error::Error for AutomatonError {}

/// Fluent builder for [`AutomatonSpec`].
pub struct AutomatonBuilder<M> {
    name: String,
    state_names: Vec<String>,
    state_kinds: Vec<StateKind>,
    transitions: Vec<Transition<M>>,
    initial: StateId,
    n_clocks: usize,
    n_regs: usize,
}

impl<M> AutomatonBuilder<M> {
    /// Starts building an automaton called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AutomatonBuilder {
            name: name.into(),
            state_names: Vec::new(),
            state_kinds: Vec::new(),
            transitions: Vec::new(),
            initial: StateId(0),
            n_clocks: 0,
            n_regs: 0,
        }
    }

    /// Declares a white (input) state.
    pub fn input_state(&mut self, name: impl Into<String>) -> StateId {
        self.state_names.push(name.into());
        self.state_kinds.push(StateKind::Input);
        StateId(self.state_names.len() - 1)
    }

    /// Declares a grey (output) state.
    pub fn output_state(&mut self, name: impl Into<String>) -> StateId {
        self.state_names.push(name.into());
        self.state_kinds.push(StateKind::Output);
        StateId(self.state_names.len() - 1)
    }

    /// Sets the initial state (default: first declared).
    pub fn initial(&mut self, s: StateId) -> &mut Self {
        self.initial = s;
        self
    }

    /// Declares `n` clock variables.
    pub fn clock_vars(&mut self, n: usize) -> &mut Self {
        self.n_clocks = n;
        self
    }

    /// Declares `n` integer registers.
    pub fn regs(&mut self, n: usize) -> &mut Self {
        self.n_regs = n;
        self
    }

    /// Adds `r(from, m)` guarded by `guard`, with optional assignment.
    pub fn receive(
        &mut self,
        from_state: StateId,
        to_state: StateId,
        sender: Pid,
        guard: impl Fn(&M, &VarStore) -> bool + Send + Sync + 'static,
        assign: Option<AssignFn<M>>,
    ) -> &mut Self {
        self.transitions.push(Transition {
            from: from_state,
            to: to_state,
            action: Action::Receive {
                from: sender,
                guard: Arc::new(guard),
            },
            assign,
        });
        self
    }

    /// Adds a time-out transition `now ≥ clocks[var] + delay`.
    pub fn timeout(
        &mut self,
        from_state: StateId,
        to_state: StateId,
        var: usize,
        delay: SimDuration,
        assign: Option<AssignFn<M>>,
    ) -> &mut Self {
        self.transitions.push(Transition {
            from: from_state,
            to: to_state,
            action: Action::Timeout { var, delay },
            assign,
        });
        self
    }

    /// Adds `s(to, make(store))` leaving a grey state.
    pub fn send(
        &mut self,
        from_state: StateId,
        to_state: StateId,
        to: Pid,
        make: impl Fn(&VarStore) -> M + Send + Sync + 'static,
        assign: Option<AssignFn<M>>,
    ) -> &mut Self {
        self.transitions.push(Transition {
            from: from_state,
            to: to_state,
            action: Action::Send {
                to,
                make: Arc::new(make),
            },
            assign,
        });
        self
    }

    /// Validates and finalises the spec.
    pub fn build(self) -> Result<AutomatonSpec<M>, AutomatonError> {
        if self.state_names.is_empty() {
            return Err(AutomatonError::Empty);
        }
        let n = self.state_names.len();
        let mut by_state: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.transitions.iter().enumerate() {
            if t.from.0 >= n {
                return Err(AutomatonError::DanglingState(t.from.0));
            }
            if t.to.0 >= n {
                return Err(AutomatonError::DanglingState(t.to.0));
            }
            if let Action::Timeout { var, .. } = t.action {
                if var >= self.n_clocks {
                    return Err(AutomatonError::BadClockVar(var));
                }
            }
            by_state[t.from.0].push(i);
        }
        for (s, kind) in self.state_kinds.iter().enumerate() {
            let outs = &by_state[s];
            match kind {
                StateKind::Output => {
                    let ok = outs.len() == 1
                        && matches!(self.transitions[outs[0]].action, Action::Send { .. });
                    if !ok {
                        return Err(AutomatonError::BadOutputState(self.state_names[s].clone()));
                    }
                }
                StateKind::Input => {
                    if outs
                        .iter()
                        .any(|&i| matches!(self.transitions[i].action, Action::Send { .. }))
                    {
                        return Err(AutomatonError::SendFromInputState(
                            self.state_names[s].clone(),
                        ));
                    }
                }
            }
        }
        Ok(AutomatonSpec {
            name: self.name,
            state_names: self.state_names,
            state_kinds: self.state_kinds,
            transitions: self.transitions,
            by_state,
            initial: self.initial,
            n_clocks: self.n_clocks,
            n_regs: self.n_regs,
        })
    }
}

impl<M> AutomatonSpec<M> {
    /// The automaton's states as `(name, kind)` pairs, in declaration order.
    pub fn states(&self) -> impl Iterator<Item = (&str, StateKind)> + '_ {
        self.state_names
            .iter()
            .map(|s| s.as_str())
            .zip(self.state_kinds.iter().copied())
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.state_names.len()
    }

    /// Number of transitions.
    pub fn n_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The state's display name.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.state_names[s.0]
    }

    /// Renders the automaton as a Graphviz DOT digraph (used by experiment
    /// E4 to regenerate Figure 2).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=LR;");
        for (i, name) in self.state_names.iter().enumerate() {
            let fill = match self.state_kinds[i] {
                StateKind::Input => "white",
                StateKind::Output => "grey",
            };
            let _ = writeln!(
                out,
                "  s{i} [label=\"{name}\", shape=circle, style=filled, fillcolor={fill}];"
            );
        }
        let _ = writeln!(out, "  init [shape=point];");
        let _ = writeln!(out, "  init -> s{};", self.initial.0);
        for t in &self.transitions {
            let label = format!("{:?}", t.action).replace('"', "'");
            let _ = writeln!(out, "  s{} -> s{} [label=\"{label}\"];", t.from.0, t.to.0);
        }
        out.push_str("}\n");
        out
    }
}

/// Interprets an [`AutomatonSpec`] as an engine [`Process`].
#[derive(Clone)]
pub struct AutomatonProcess<M> {
    spec: Arc<AutomatonSpec<M>>,
    state: StateId,
    store: VarStore,
    /// Messages not yet consumable in the current state (see module docs).
    pending: VecDeque<(Pid, M)>,
    /// Increments on every state entry; timers carry the epoch they were set
    /// in, so timers from abandoned states are ignored.
    epoch: u64,
    halted: bool,
}

/// Manual impl: the spec holds guard/payload closures, which are shared
/// immutable configuration — identified by the spec name, elided otherwise
/// (see the [`Process`] fingerprinting contract). All mutable state (control
/// state, store, pending queue, epoch, halted) is rendered.
impl<M: Message> fmt::Debug for AutomatonProcess<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AutomatonProcess")
            .field("spec", &self.spec.name)
            .field("state", &self.state)
            .field("store", &self.store)
            .field("pending", &self.pending)
            .field("epoch", &self.epoch)
            .field("halted", &self.halted)
            .finish()
    }
}

impl<M: Message> AutomatonProcess<M> {
    /// Instantiates the automaton in its initial state.
    pub fn new(spec: Arc<AutomatonSpec<M>>) -> Self {
        let store = VarStore {
            clocks: vec![SimTime::ZERO; spec.n_clocks],
            regs: vec![0; spec.n_regs],
        };
        let initial = spec.initial;
        AutomatonProcess {
            spec,
            state: initial,
            store,
            pending: VecDeque::new(),
            epoch: 0,
            halted: false,
        }
    }

    /// Current control state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Current control-state name.
    pub fn state_name(&self) -> &str {
        self.spec.state_name(self.state)
    }

    /// The variable store (clocks and registers).
    pub fn store(&self) -> &VarStore {
        &self.store
    }

    /// True once a terminal state (no outgoing transitions) was reached.
    pub fn is_terminal(&self) -> bool {
        self.halted
    }

    fn fire(&mut self, idx: usize, now: SimTime, msg: Option<&M>, ctx: &mut Ctx<M>) {
        let t = self.spec.transitions[idx].clone();
        if let Some(assign) = &t.assign {
            assign(&mut self.store, now, msg);
        }
        self.enter(t.to, ctx);
    }

    /// Enters `state`: performs the whole chain of grey states (each sends
    /// its one message), then in the final white state arms timeout timers,
    /// re-offers buffered messages, and halts if terminal.
    fn enter(&mut self, state: StateId, ctx: &mut Ctx<M>) {
        self.state = state;
        self.epoch += 1;
        ctx.mark("state", state.0 as i64);
        // Chain through grey states.
        while matches!(self.spec.state_kinds[self.state.0], StateKind::Output) {
            let out = self.spec.by_state[self.state.0][0];
            let t = self.spec.transitions[out].clone();
            if let Action::Send { to, make } = &t.action {
                let msg = make(&self.store);
                ctx.send(*to, msg);
            }
            if let Some(assign) = &t.assign {
                assign(&mut self.store, ctx.now(), None);
            }
            self.state = t.to;
            self.epoch += 1;
            ctx.mark("state", self.state.0 as i64);
        }
        // Arm timers for timeout transitions of the (white) state.
        for &ti in &self.spec.by_state[self.state.0] {
            if let Action::Timeout { var, delay } = self.spec.transitions[ti].action {
                let deadline = self.store.clocks[var] + delay;
                let id = (self.epoch << 16) | ti as u64;
                ctx.set_timer_at(id, deadline);
            }
        }
        // Terminal white state: protocol role complete.
        if self.spec.by_state[self.state.0].is_empty() {
            self.halted = true;
            ctx.halt();
            return;
        }
        // Re-offer buffered messages to the new state.
        self.drain_pending(ctx);
    }

    fn drain_pending(&mut self, ctx: &mut Ctx<M>) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.halted {
                return;
            }
            let (from, msg) = self.pending[i].clone();
            if let Some(idx) = self.match_receive(from, &msg) {
                self.pending.remove(i);
                self.fire(idx, ctx.now(), Some(&msg), ctx);
                // `fire` may have changed state; restart the scan.
                i = 0;
            } else {
                i += 1;
            }
        }
    }

    fn match_receive(&self, from: Pid, msg: &M) -> Option<usize> {
        self.spec.by_state[self.state.0]
            .iter()
            .copied()
            .find(|&ti| match &self.spec.transitions[ti].action {
                Action::Receive { from: want, guard } => *want == from && guard(msg, &self.store),
                _ => false,
            })
    }
}

impl<M: Message> Process<M> for AutomatonProcess<M> {
    fn on_start(&mut self, ctx: &mut Ctx<M>) {
        let init = self.spec.initial;
        self.enter(init, ctx);
    }

    fn on_message(&mut self, from: Pid, msg: M, ctx: &mut Ctx<M>) {
        if self.halted {
            return;
        }
        if let Some(idx) = self.match_receive(from, &msg) {
            self.fire(idx, ctx.now(), Some(&msg), ctx);
        } else {
            // Buffer: the asynchronous network holds messages until the
            // automaton reaches a state that can consume them.
            self.pending.push_back((from, msg));
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<M>) {
        if self.halted {
            return;
        }
        let epoch = id >> 16;
        let ti = (id & 0xFFFF) as usize;
        if epoch != self.epoch {
            return; // stale timer from a state we already left
        }
        // The timeout may still be in the future if the clock variable was
        // re-assigned; re-check the guard against the local clock.
        if let Action::Timeout { var, delay } = self.spec.transitions[ti].action {
            let deadline = self.store.clocks[var] + delay;
            if ctx.now() >= deadline {
                self.fire(ti, ctx.now(), None, ctx);
            } else {
                let id = (self.epoch << 16) | ti as u64;
                ctx.set_timer_at(id, deadline);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn box_clone(&self) -> Box<dyn Process<M>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftClock;
    use crate::engine::{Engine, EngineConfig};
    use crate::net::SyncNet;
    use crate::oracle::RandomOracle;

    /// Test message alphabet.
    #[derive(Debug, Clone, PartialEq)]
    enum TMsg {
        Ping,
        Pong,
        Value(i64),
    }

    /// requester(0): send Ping to 1; await Pong with timeout; halt.
    fn requester(peer: Pid, patience: SimDuration) -> AutomatonSpec<TMsg> {
        let mut b = AutomatonBuilder::new("requester");
        let send = b.output_state("send_ping");
        let wait = b.input_state("await_pong");
        let done = b.input_state("done");
        let gave_up = b.input_state("gave_up");
        b.clock_vars(1);
        b.initial(send);
        b.send(
            send,
            wait,
            peer,
            |_| TMsg::Ping,
            Some(Arc::new(|st: &mut VarStore, now, _| st.clocks[0] = now)),
        );
        b.receive(wait, done, peer, |m, _| matches!(m, TMsg::Pong), None);
        b.timeout(wait, gave_up, 0, patience, None);
        b.build().unwrap()
    }

    /// responder(1): await Ping from 0, send Pong back, halt.
    fn responder(peer: Pid) -> AutomatonSpec<TMsg> {
        let mut b = AutomatonBuilder::new("responder");
        let wait = b.input_state("await_ping");
        let reply = b.output_state("send_pong");
        let done = b.input_state("done");
        b.initial(wait);
        b.receive(wait, reply, peer, |m, _| matches!(m, TMsg::Ping), None);
        b.send(reply, done, peer, |_| TMsg::Pong, None);
        b.build().unwrap()
    }

    fn run_pair(delta: SimDuration, patience: SimDuration) -> (Engine<TMsg>, Pid, Pid) {
        let mut eng = Engine::new(
            Box::new(SyncNet::worst_case(delta)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let req = eng.add_process(
            Box::new(AutomatonProcess::new(Arc::new(requester(1, patience)))),
            DriftClock::perfect(),
        );
        let rsp = eng.add_process(
            Box::new(AutomatonProcess::new(Arc::new(responder(0)))),
            DriftClock::perfect(),
        );
        eng.run();
        (eng, req, rsp)
    }

    #[test]
    fn happy_path_reaches_done() {
        let (eng, req, rsp) = run_pair(SimDuration::from_ticks(10), SimDuration::from_ticks(1_000));
        let r = eng.process_as::<AutomatonProcess<TMsg>>(req).unwrap();
        assert_eq!(r.state_name(), "done");
        assert!(r.is_terminal());
        let s = eng.process_as::<AutomatonProcess<TMsg>>(rsp).unwrap();
        assert_eq!(s.state_name(), "done");
    }

    #[test]
    fn timeout_path_when_network_slow() {
        // Round trip needs 2·δ = 400 > patience 100 ⇒ requester gives up.
        let (eng, req, _) = run_pair(SimDuration::from_ticks(200), SimDuration::from_ticks(100));
        let r = eng.process_as::<AutomatonProcess<TMsg>>(req).unwrap();
        assert_eq!(r.state_name(), "gave_up");
    }

    #[test]
    fn timeout_exactly_at_round_trip_boundary_takes_timeout() {
        // Round trip = 2·δ = 200 with zero compute; with patience exactly
        // 200 the time-out guard `now ≥ u + a` is already enabled when the
        // Pong arrives at t = 200, and the timer event was scheduled first
        // (lower sequence number) — the automaton gives up. This is the
        // sharpness of the timeout calculus: deadlines must be strictly
        // larger than the worst-case round trip.
        let (eng, req, _) = run_pair(SimDuration::from_ticks(100), SimDuration::from_ticks(200));
        let r = eng.process_as::<AutomatonProcess<TMsg>>(req).unwrap();
        assert_eq!(r.state_name(), "gave_up");
        // One tick of slack flips the outcome.
        let (eng2, req2, _) = run_pair(SimDuration::from_ticks(100), SimDuration::from_ticks(201));
        let r2 = eng2.process_as::<AutomatonProcess<TMsg>>(req2).unwrap();
        assert_eq!(r2.state_name(), "done");
    }

    #[test]
    fn early_messages_are_buffered() {
        // An automaton expecting Value(1) then Value(2), fed in reverse
        // order, must still complete thanks to buffering.
        #[derive(Debug, Clone)]
        struct Feeder {
            peer: Pid,
        }
        impl Process<TMsg> for Feeder {
            fn on_start(&mut self, ctx: &mut Ctx<TMsg>) {
                ctx.send(self.peer, TMsg::Value(2));
                ctx.send(self.peer, TMsg::Value(1));
            }
            fn on_message(&mut self, _f: Pid, _m: TMsg, _c: &mut Ctx<TMsg>) {}
            fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<TMsg>) {}
            crate::impl_process_boilerplate!(TMsg);
        }
        let mut b = AutomatonBuilder::new("orderly");
        let s1 = b.input_state("want_one");
        let s2 = b.input_state("want_two");
        let done = b.input_state("done");
        b.initial(s1);
        b.regs(1);
        b.receive(s1, s2, 0, |m, _| matches!(m, TMsg::Value(1)), None);
        b.receive(
            s2,
            done,
            0,
            |m, _| matches!(m, TMsg::Value(2)),
            Some(Arc::new(|st: &mut VarStore, _, m| {
                if let Some(TMsg::Value(v)) = m {
                    st.regs[0] = *v;
                }
            })),
        );
        let spec = b.build().unwrap();

        // Deliver Value(2) strictly before Value(1): the first send goes out
        // earlier and the net is FIFO-by-schedule with equal worst-case
        // delay, so ordering is by send time.
        let mut eng = Engine::new(
            Box::new(SyncNet::worst_case(SimDuration::from_ticks(10))),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let feeder = eng.add_process(Box::new(Feeder { peer: 1 }), DriftClock::perfect());
        assert_eq!(feeder, 0);
        let orderly = eng.add_process(
            Box::new(AutomatonProcess::new(Arc::new(spec))),
            DriftClock::perfect(),
        );
        eng.run();
        let a = eng.process_as::<AutomatonProcess<TMsg>>(orderly).unwrap();
        assert_eq!(a.state_name(), "done");
        assert_eq!(
            a.store().regs[0],
            2,
            "assignment captured the message value"
        );
    }

    #[test]
    fn clock_assignment_remembers_transition_time() {
        let (eng, req, _) = run_pair(SimDuration::from_ticks(10), SimDuration::from_ticks(1_000));
        let r = eng.process_as::<AutomatonProcess<TMsg>>(req).unwrap();
        // x0 := now fired when Ping was sent, at local time 0.
        assert_eq!(r.store().clocks[0], SimTime::ZERO);
    }

    #[test]
    fn stale_timers_ignored_after_state_change() {
        // Patience long enough that Pong arrives first; the timer still
        // fires later but must not move the automaton out of `done`.
        let (mut eng, req, _) =
            run_pair(SimDuration::from_ticks(10), SimDuration::from_ticks(50_000));
        eng.run_until(SimTime::from_secs(7_200));
        let r = eng.process_as::<AutomatonProcess<TMsg>>(req).unwrap();
        assert_eq!(r.state_name(), "done");
    }

    #[test]
    fn builder_validates_output_states() {
        let mut b = AutomatonBuilder::<TMsg>::new("bad");
        let g = b.output_state("grey_no_send");
        let _w = b.input_state("white");
        b.initial(g);
        assert!(matches!(b.build(), Err(AutomatonError::BadOutputState(_))));

        let mut b2 = AutomatonBuilder::<TMsg>::new("bad2");
        let w = b2.input_state("white_with_send");
        let w2 = b2.input_state("white2");
        b2.send(w, w2, 0, |_| TMsg::Ping, None);
        assert!(matches!(
            b2.build(),
            Err(AutomatonError::SendFromInputState(_))
        ));

        let mut b3 = AutomatonBuilder::<TMsg>::new("bad3");
        let w = b3.input_state("w");
        b3.timeout(w, w, 3, SimDuration::ZERO, None);
        assert!(matches!(b3.build(), Err(AutomatonError::BadClockVar(3))));

        let b4 = AutomatonBuilder::<TMsg>::new("empty");
        assert!(matches!(b4.build(), Err(AutomatonError::Empty)));
    }

    #[test]
    fn dot_rendering_mentions_all_states() {
        let spec = requester(1, SimDuration::from_ticks(5));
        let dot = spec.to_dot();
        for (name, _) in spec.states() {
            assert!(dot.contains(name), "missing {name} in DOT output");
        }
        assert!(dot.contains("digraph"));
        assert!(dot.contains("fillcolor=grey"));
        assert!(dot.contains("fillcolor=white"));
    }

    #[test]
    fn spec_accessors() {
        let spec = requester(1, SimDuration::from_ticks(5));
        assert_eq!(spec.n_states(), 4);
        assert_eq!(spec.n_transitions(), 3);
        assert_eq!(spec.state_name(StateId(0)), "send_ping");
    }
}
