//! State fingerprinting for the reduced schedule explorer.
//!
//! The exhaustive explorer ([`crate::explore`]) enumerates oracle-choice
//! paths; many paths converge to the same engine state (a message that took
//! the fast bucket and a slow σ draw can land exactly where a slow bucket
//! and a fast draw would have). [`crate::engine::Engine::enable_fingerprints`]
//! folds everything the run's *future* can depend on into a 64-bit FNV-1a
//! digest after every dispatched event, so the explorer can cut a run short
//! the moment it re-enters territory another schedule already covered.
//!
//! What the digest covers — and why each piece is needed — is documented on
//! [`crate::engine::Engine::enable_fingerprints`]; this module only provides
//! the hasher: a tiny allocation-free FNV-1a accumulator that doubles as a
//! [`std::fmt::Write`] target, so a process's `Debug` rendering can be
//! streamed straight into the digest without ever materialising the string.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental 64-bit FNV-1a hasher.
///
/// Deliberately *not* [`std::hash::Hasher`]: fingerprints are compared
/// across runs, threads and (via violation paths) processes, so the digest
/// must be a fixed function of the bytes fed in — never of `RandomState`
/// seeds or platform defaults.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Feeds one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds one `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds one `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Feeds one `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Digest of a value's `Debug` rendering, streamed (no allocation).
pub fn debug_digest<T: fmt::Debug + ?Sized>(value: &T) -> u64 {
    use fmt::Write as _;
    let mut h = Fnv64::new();
    let _ = write!(h, "{value:?}");
    h.finish()
}

/// One FNV-1a mixing step over a single `u64` — handy for chaining digests
/// without constructing a hasher.
pub fn mix(acc: u64, v: u64) -> u64 {
    let mut h = Fnv64(acc);
    h.write_u64(v);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish(), "order matters");
    }

    #[test]
    fn debug_digest_streams_rendering() {
        #[derive(Debug)]
        struct S {
            #[allow(dead_code)] // read only through the Debug rendering
            x: u32,
        }
        assert_eq!(debug_digest(&S { x: 1 }), debug_digest(&S { x: 1 }));
        assert_ne!(debug_digest(&S { x: 1 }), debug_digest(&S { x: 2 }));
    }

    #[test]
    fn mix_chains() {
        let a = mix(mix(FNV_OFFSET, 1), 2);
        let mut h = Fnv64::new();
        h.write_u64(1);
        h.write_u64(2);
        assert_eq!(a, h.finish());
        assert_ne!(mix(FNV_OFFSET, 1), mix(FNV_OFFSET, 2));
    }
}
