//! # xchain-anta — Asynchronous Networks of Timed Automata
//!
//! The executable form of the specification formalism the paper introduces
//! for its protocols (§4, "a specification formalism introduced in \[5\]"):
//! a network of automata, each with its own (drifting) clock, exchanging
//! messages through a timing model that is synchronous, partially
//! synchronous, or adversarial.
//!
//! Components:
//!
//! * [`time`] — fixed-point simulated time (deterministic integer math);
//! * [`clock`] — per-process drifting clocks `C(t) = offset + rate·t`;
//! * [`process`] — the [`process::Process`] trait protocol code implements;
//! * [`automaton`] — data-driven timed automata (white/grey states, guards,
//!   `x := now` assignments) interpreting Figure 2 directly;
//! * [`net`] — `Sync(δ)` / `PartialSync(GST, δ)` / adversarial models;
//! * [`oracle`] — the single funnel for scheduler nondeterminism;
//! * [`engine`] — the deterministic discrete-event simulator;
//! * [`trace`] — run traces consumed by the property checkers;
//! * [`explore`] — exhaustive schedule enumeration on small instances.
//!
//! ## Example: two automata under a synchronous network
//!
//! ```
//! use anta::prelude::*;
//! use std::sync::Arc;
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Msg { Ping, Pong }
//!
//! // requester: grey "send ping" → white "await pong" (with timeout).
//! let mut b = AutomatonBuilder::new("requester");
//! let send = b.output_state("send_ping");
//! let wait = b.input_state("await_pong");
//! let done = b.input_state("done");
//! let late = b.input_state("gave_up");
//! b.clock_vars(1);
//! b.initial(send);
//! b.send(send, wait, 1, |_| Msg::Ping,
//!        Some(Arc::new(|st: &mut VarStore, now, _| st.clocks[0] = now)));
//! b.receive(wait, done, 1, |m, _| matches!(m, Msg::Pong), None);
//! b.timeout(wait, late, 0, SimDuration::from_millis(5), None);
//! let requester = b.build().unwrap();
//!
//! let mut b = AutomatonBuilder::new("responder");
//! let wait = b.input_state("await_ping");
//! let reply = b.output_state("send_pong");
//! let fin = b.input_state("done");
//! b.initial(wait);
//! b.receive(wait, reply, 0, |m, _| matches!(m, Msg::Ping), None);
//! b.send(reply, fin, 0, |_| Msg::Pong, None);
//! let responder = b.build().unwrap();
//!
//! let mut eng = Engine::new(
//!     Box::new(SyncNet::worst_case(SimDuration::from_millis(1))),
//!     Box::new(RandomOracle::seeded(1)),
//!     EngineConfig::default(),
//! );
//! let rq = eng.add_process(Box::new(AutomatonProcess::new(Arc::new(requester))),
//!                          DriftClock::perfect());
//! let _rs = eng.add_process(Box::new(AutomatonProcess::new(Arc::new(responder))),
//!                           DriftClock::with_drift_ppm(50_000, SimDuration::ZERO));
//! let report = eng.run();
//! assert!(report.quiescent);
//! let a = eng.process_as::<AutomatonProcess<Msg>>(rq).unwrap();
//! assert_eq!(a.state_name(), "done");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod clock;
pub mod engine;
pub mod explore;
pub mod fingerprint;
pub mod net;
pub mod oracle;
pub mod process;
pub mod time;
pub mod trace;

/// One-stop imports for simulation code.
pub mod prelude {
    pub use crate::automaton::{
        Action, AutomatonBuilder, AutomatonProcess, AutomatonSpec, StateId, StateKind, VarStore,
    };
    pub use crate::clock::DriftClock;
    pub use crate::engine::{Engine, EngineConfig, RunReport};
    pub use crate::explore::{
        explore, explore_differential, explore_parallel, explore_parallel_with, replay,
        replay_pruned, DifferentialReport, ExploreConfig, ExploreLimits, ExploreMode,
        ExploreReport, Violation,
    };
    pub use crate::fingerprint::{debug_digest, Fnv64};
    pub use crate::net::{
        AdversarialNet, Delivery, EnvelopeMeta, FaultyNet, NetFaults, NetModel, PartialSyncNet,
        PreGstPolicy, SyncNet,
    };
    pub use crate::oracle::{
        ChoiceKind, ChoiceTag, FixedOracle, Oracle, RandomOracle, ReplayOracle,
    };
    pub use crate::process::{Ctx, Effect, Message, Pid, Process, TimerId};
    pub use crate::time::{SimDuration, SimTime, MILLI, SECOND};
    pub use crate::trace::{Trace, TraceEvent, TraceKind, TraceMode};
}
