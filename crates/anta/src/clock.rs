//! Drifting local clocks.
//!
//! Each ANTA automaton "keeps an internal clock, whose value … is stored in
//! the variable `now`" (§4). The paper's Theorem 1 protocol is explicitly
//! *fine-tuned to work correctly in the presence of clock drift* — the very
//! deficiency it identifies in the synchronous solutions of Interledger \[4\]
//! and Herlihy–Liskov–Shrira \[3\]. This module models that drift.
//!
//! A [`DriftClock`] maps real (simulation) time `t` to local time
//!
//! ```text
//! C(t) = offset + t · rate_num / rate_den
//! ```
//!
//! with `rate_num/rate_den ∈ [1/(1+ρ), 1+ρ]` for drift bound ρ. A fixed rate
//! within the envelope is the adversary's strongest choice for the timeout
//! analysis (a clock that is maximally fast or slow for the whole run), and
//! keeps the map invertible, which the engine uses to convert local-time
//! deadlines (`now ≥ u + a_i`) into real-time events.
//!
//! Rates are exact rationals in parts-per-million, so the clock arithmetic —
//! like everything else in the simulator — is deterministic integer math.

use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// Parts-per-million denominator for clock rates.
pub const PPM: u64 = 1_000_000;

/// A local clock with a fixed rational rate and an initial offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftClock {
    /// Local ticks advanced per `rate_den` real ticks.
    rate_num: u64,
    rate_den: u64,
    /// Local time at real time zero.
    offset: SimDuration,
}

impl Default for DriftClock {
    fn default() -> Self {
        Self::perfect()
    }
}

impl DriftClock {
    /// A perfect clock: `C(t) = t`.
    pub fn perfect() -> Self {
        DriftClock {
            rate_num: 1,
            rate_den: 1,
            offset: SimDuration::ZERO,
        }
    }

    /// A clock running at `(PPM + drift_ppm) / PPM` real speed with a start
    /// offset. `drift_ppm` may be negative (slow clock); it must satisfy
    /// `drift_ppm > -PPM` (a clock cannot stop or run backwards).
    pub fn with_drift_ppm(drift_ppm: i64, offset: SimDuration) -> Self {
        assert!(
            drift_ppm > -(PPM as i64),
            "clock rate must stay positive (drift_ppm = {drift_ppm})"
        );
        let rate_num = (PPM as i64 + drift_ppm) as u64;
        DriftClock {
            rate_num,
            rate_den: PPM,
            offset,
        }
    }

    /// Samples a clock uniformly within the drift envelope `ρ` (given in
    /// ppm): rate ∈ [PPM − rho_ppm, PPM + rho_ppm], offset ∈ [0, max_offset].
    ///
    /// Within-envelope sampling matches the synchrony assumption of
    /// Theorem 1: drift is bounded but otherwise arbitrary.
    pub fn sample<R: Rng>(rho_ppm: u64, max_offset: SimDuration, rng: &mut R) -> Self {
        assert!(rho_ppm < PPM, "rho must be < 100%");
        let drift = rng.gen_range(-(rho_ppm as i64)..=(rho_ppm as i64));
        let offset = if max_offset.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ticks(rng.gen_range(0..=max_offset.ticks()))
        };
        Self::with_drift_ppm(drift, offset)
    }

    /// The extreme clocks of the envelope — the adversary's best choices.
    pub fn fastest(rho_ppm: u64) -> Self {
        Self::with_drift_ppm(rho_ppm as i64, SimDuration::ZERO)
    }

    /// See [`DriftClock::fastest`].
    pub fn slowest(rho_ppm: u64) -> Self {
        Self::with_drift_ppm(-(rho_ppm as i64), SimDuration::ZERO)
    }

    /// Local clock reading at real time `t` (rounded down).
    pub fn local_at(&self, real: SimTime) -> SimTime {
        let scaled =
            SimDuration::from_ticks(real.ticks()).scale_floor(self.rate_num, self.rate_den);
        SimTime::ZERO + scaled + self.offset
    }

    /// Earliest real time at which the local clock reads **at least**
    /// `local`. Returns `None` if the local value precedes the clock's
    /// offset (it already read more than that at real time zero) — the
    /// deadline is then due immediately.
    pub fn real_when_local(&self, local: SimTime) -> Option<SimTime> {
        let past_offset = local.checked_since(SimTime::ZERO + self.offset)?;
        // Smallest t with floor(t·num/den) ≥ past_offset  ⇒  t = ceil(p·den/num).
        let t = past_offset.scale_ceil(self.rate_den, self.rate_num);
        Some(SimTime::ZERO + t)
    }

    /// Converts a *local* duration to the longest real duration it can span
    /// (slow clock ⇒ local deadline takes longer in real time).
    pub fn real_duration_upper(&self, local: SimDuration) -> SimDuration {
        local.scale_ceil(self.rate_den, self.rate_num)
    }

    /// The clock's rate as (numerator, denominator).
    pub fn rate(&self) -> (u64, u64) {
        (self.rate_num, self.rate_den)
    }

    /// The clock's offset (local time at real zero).
    pub fn offset(&self) -> SimDuration {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_clock_is_identity() {
        let c = DriftClock::perfect();
        for t in [0u64, 1, 17, 1_000_000] {
            assert_eq!(c.local_at(SimTime::from_ticks(t)), SimTime::from_ticks(t));
            assert_eq!(
                c.real_when_local(SimTime::from_ticks(t)),
                Some(SimTime::from_ticks(t))
            );
        }
    }

    #[test]
    fn fast_clock_reads_ahead() {
        let c = DriftClock::with_drift_ppm(100_000, SimDuration::ZERO); // +10%
        assert_eq!(
            c.local_at(SimTime::from_ticks(1_000_000)),
            SimTime::from_ticks(1_100_000)
        );
        // A fast clock reaches a local deadline sooner in real time.
        let real = c.real_when_local(SimTime::from_ticks(1_100_000)).unwrap();
        assert_eq!(real, SimTime::from_ticks(1_000_000));
    }

    #[test]
    fn slow_clock_reads_behind() {
        let c = DriftClock::with_drift_ppm(-200_000, SimDuration::ZERO); // −20%
        assert_eq!(
            c.local_at(SimTime::from_ticks(1_000_000)),
            SimTime::from_ticks(800_000)
        );
        let real = c.real_when_local(SimTime::from_ticks(800_000)).unwrap();
        assert_eq!(real, SimTime::from_ticks(1_000_000));
    }

    #[test]
    fn offset_applies() {
        let c = DriftClock::with_drift_ppm(0, SimDuration::from_ticks(500));
        assert_eq!(c.local_at(SimTime::ZERO), SimTime::from_ticks(500));
        assert_eq!(
            c.real_when_local(SimTime::from_ticks(700)),
            Some(SimTime::from_ticks(200))
        );
        // Local time before the offset was already passed at real zero.
        assert_eq!(c.real_when_local(SimTime::from_ticks(400)), None);
    }

    #[test]
    #[should_panic(expected = "rate must stay positive")]
    fn stopping_clock_rejected() {
        let _ = DriftClock::with_drift_ppm(-(PPM as i64), SimDuration::ZERO);
    }

    #[test]
    fn extremes_bracket_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let rho = 50_000; // 5%
        let fast = DriftClock::fastest(rho);
        let slow = DriftClock::slowest(rho);
        for _ in 0..100 {
            let c = DriftClock::sample(rho, SimDuration::ZERO, &mut rng);
            let t = SimTime::from_secs(10);
            assert!(c.local_at(t) <= fast.local_at(t));
            assert!(c.local_at(t) >= slow.local_at(t));
        }
    }

    #[test]
    fn real_duration_upper_is_pessimistic() {
        let slow = DriftClock::slowest(100_000); // -10%: local d takes d/0.9 real
        let local = SimDuration::from_ticks(900_000);
        let real = slow.real_duration_upper(local);
        assert_eq!(real, SimDuration::from_ticks(1_000_000));
    }

    proptest! {
        #[test]
        fn prop_local_monotone(drift in -500_000i64..500_000, a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
            let c = DriftClock::with_drift_ppm(drift, SimDuration::ZERO);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.local_at(SimTime::from_ticks(lo)) <= c.local_at(SimTime::from_ticks(hi)));
        }

        #[test]
        fn prop_inverse_is_earliest(drift in -500_000i64..500_000, offset in 0u64..1_000_000, local in 0u64..1u64<<40) {
            let c = DriftClock::with_drift_ppm(drift, SimDuration::from_ticks(offset));
            let local_t = SimTime::from_ticks(local);
            if let Some(real) = c.real_when_local(local_t) {
                // At the returned real time the deadline has passed…
                prop_assert!(c.local_at(real) >= local_t);
                // …and one tick earlier it had not (earliest such time).
                if real.ticks() > 0 {
                    prop_assert!(c.local_at(real - SimDuration::from_ticks(1)) < local_t);
                }
            } else {
                // None ⇒ deadline was already met at real zero.
                prop_assert!(c.local_at(SimTime::ZERO) >= local_t);
            }
        }

        #[test]
        fn prop_drift_envelope(drift in -100_000i64..100_000, t in 1u64..1u64<<40) {
            // |C(t) − t| ≤ |drift|·t/PPM + 1 for zero-offset clocks.
            let c = DriftClock::with_drift_ppm(drift, SimDuration::ZERO);
            let local = c.local_at(SimTime::from_ticks(t)).ticks() as i128;
            let ideal = t as i128;
            let bound = (drift.unsigned_abs() as i128 * t as i128) / PPM as i128 + 1;
            prop_assert!((local - ideal).abs() <= bound);
        }
    }
}
