//! The deterministic discrete-event engine executing an Asynchronous
//! Network of Timed Automata.
//!
//! Semantics follow §4 of the paper:
//!
//! * each process owns a drifting local clock; *all* protocol-visible time
//!   is local (`Ctx::now`), while the engine itself runs on real time;
//! * **white (input) states**: a process sits idle until a message delivery
//!   or a local-clock timeout enables a transition — modelled by
//!   `on_message` / `on_timer`;
//! * **grey (output) states**: "an automaton spends a bounded amount of
//!   time calculating in each grey state" — modelled by charging a
//!   computation delay in `[0, σ_max]` (oracle-quantised) to every handler
//!   invocation that sends messages;
//! * message transit is decided by the pluggable [`NetModel`].
//!
//! Determinism: the priority queue orders events by `(real_time, seq)` where
//! `seq` is a global monotone counter, so runs are bit-reproducible given
//! the same oracle; all randomness flows through [`Oracle`].

use crate::clock::DriftClock;
use crate::fingerprint::{debug_digest, Fnv64};
use crate::net::{Delivery, EnvelopeMeta, NetModel};
use crate::oracle::{ChoiceTag, FixedOracle, Oracle};
use crate::process::{Ctx, Effect, Message, Pid, Process, TimerId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind, TraceMode};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard horizon on real simulation time; runs stop at the first event
    /// beyond it. "Eventually" in liveness properties is checked against
    /// generous horizons.
    pub max_real_time: SimTime,
    /// Runaway guard: maximum number of dispatched events.
    pub max_events: u64,
    /// Maximum computation time charged to a sending handler (σ).
    pub sigma_max: SimDuration,
    /// Quantisation of the computation delay (1 ⇒ always σ_max).
    pub sigma_buckets: usize,
    /// How much of the run the trace records. [`TraceMode::CountersOnly`]
    /// skips storing (and cloning) message payloads — the right choice for
    /// exhaustive exploration and sweeps, where only counters, marks and
    /// halts are read back.
    pub trace_mode: TraceMode,
    /// Dead-branch elision for the reduced schedule explorer.
    ///
    /// A delivery to a process that has already **halted** is a no-op: the
    /// engine discards the event before the handler or the trace sees it.
    /// The delay bucket chosen for such a message (and the σ bucket of a
    /// handler *all* of whose sends are dead) therefore decides nothing the
    /// run can observe — except the real time at which the dead event is
    /// popped, which only moves `RunReport::end_time`/`events` for the dead
    /// tail of the run. With this flag on, those choices are pinned to the
    /// worst case (the same convention as `buckets = 1`) instead of being
    /// drawn from the oracle, so an exploring oracle never logs — and the
    /// explorer never branches on — choices whose subtrees are pairwise
    /// identical.
    ///
    /// Off by default: pinning removes oracle draws, so seeded Monte-Carlo
    /// runs would see a shifted choice stream. Checkers that read
    /// `end_time`/`events` of post-halt tails, or that distinguish runs
    /// truncated *inside* a dead tail, should not enable it.
    pub prune_dead_sends: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_real_time: SimTime::from_secs(3_600),
            max_events: 5_000_000,
            sigma_max: SimDuration::ZERO,
            sigma_buckets: 1,
            trace_mode: TraceMode::Full,
            prune_dead_sends: false,
        }
    }
}

/// Why and how a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Events dispatched.
    pub events: u64,
    /// Real time of the last dispatched event.
    pub end_time: SimTime,
    /// True if the event queue drained (nothing left to happen).
    pub quiescent: bool,
    /// True if every process halted.
    pub all_halted: bool,
    /// True if the run stopped at the time horizon or event cap instead of
    /// draining.
    pub truncated: bool,
}

struct ProcSlot<M> {
    proc: Box<dyn Process<M>>,
    clock: DriftClock,
    halted: bool,
}

enum EventKind<M> {
    Start(Pid),
    Deliver { from: Pid, to: Pid, msg: M },
    Timer { pid: Pid, id: TimerId },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
    /// Content hash of `kind` (pids, timer id, payload digest — **not**
    /// `seq`), computed once at push time. Zero unless fingerprinting is
    /// enabled. Excluding `seq` lets two schedules that created the same
    /// in-flight messages in a different order converge to equal state
    /// fingerprints; the queue fold preserves `(at, seq)` order, so equal
    /// hashes still imply the same future dispatch order of equal events.
    ehash: u64,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// State-fingerprinting machinery, present only after
/// [`Engine::enable_fingerprints`]. Kept out of the hot path entirely when
/// absent.
struct FpState {
    /// Seen-set probe installed by the reduced explorer: called with the
    /// state fingerprint after every dispatched event; returning `true`
    /// means "this state is already covered — stop the run".
    probe: Option<Box<dyn FnMut(u64) -> bool>>,
    /// Cached per-process [`Process::fp_digest`] values; only the dispatched
    /// pid's entry is recomputed per event.
    proc_digests: Vec<u64>,
    /// Events dispatched so far (dead deliveries included).
    dispatched: u64,
    /// Scratch buffer for sorting the in-flight event set by `(at, seq)`.
    scratch: Vec<(SimTime, u64, u64)>,
    /// Scratch buffer for [`Process::fp_times`] residues.
    times_scratch: Vec<SimTime>,
    /// Set when the probe cut the run short.
    deduped: bool,
}

/// The simulator.
pub struct Engine<M: Message> {
    procs: Vec<ProcSlot<M>>,
    net: Box<dyn NetModel<M>>,
    oracle: Box<dyn Oracle>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    seq: u64,
    now: SimTime,
    trace: Trace<M>,
    cfg: EngineConfig,
    started: bool,
    /// Recycled effects buffer, handed to each handler's `Ctx` and taken
    /// back after dispatch — one allocation per run, not per handler.
    fx_buf: Vec<Effect<M>>,
    /// High-water mark of the event queue, for pre-sizing repeated runs.
    queue_high: usize,
    /// Fingerprinting state (reduced explorer); `None` ⇒ zero overhead.
    fp: Option<FpState>,
    /// Choices elided under [`EngineConfig::prune_dead_sends`].
    dead_branch_prunes: u64,
}

impl<M: Message> Engine<M> {
    /// Creates an engine over a network model and an oracle.
    pub fn new(net: Box<dyn NetModel<M>>, oracle: Box<dyn Oracle>, cfg: EngineConfig) -> Self {
        let trace = Trace::with_mode(cfg.trace_mode);
        Engine {
            procs: Vec::new(),
            net,
            oracle,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            trace,
            cfg,
            started: false,
            fx_buf: Vec::new(),
            queue_high: 0,
            fp: None,
            dead_branch_prunes: 0,
        }
    }

    /// Registers a process with its local clock; returns its [`Pid`]
    /// (dense, in registration order).
    pub fn add_process(&mut self, proc: Box<dyn Process<M>>, clock: DriftClock) -> Pid {
        assert!(!self.started, "processes must be added before run()");
        let pid = self.procs.len();
        self.procs.push(ProcSlot {
            proc,
            clock,
            halted: false,
        });
        pid
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if no processes are registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Current real simulation time.
    pub fn real_now(&self) -> SimTime {
        self.now
    }

    /// `pid`'s local clock reading at the current real time.
    pub fn local_now(&self, pid: Pid) -> SimTime {
        self.procs[pid].clock.local_at(self.now)
    }

    /// Immutable access to a process, downcast to its concrete type.
    /// Returns `None` for a wrong type; panics on a bad pid.
    pub fn process_as<T: 'static>(&self, pid: Pid) -> Option<&T> {
        self.procs[pid].proc.as_any().downcast_ref::<T>()
    }

    /// Whether `pid` has halted.
    pub fn is_halted(&self, pid: Pid) -> bool {
        self.procs[pid].halted
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<M> {
        &self.trace
    }

    /// Consumes the engine, yielding the trace.
    pub fn into_trace(self) -> Trace<M> {
        self.trace
    }

    /// Largest number of events the queue held at any point so far — the
    /// capacity a repeat of a comparable run needs.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high
    }

    /// Pre-sizes the event queue and (in [`TraceMode::Full`]) the trace
    /// buffer. The schedule explorer calls this between runs with the
    /// previous run's high-water marks so rebuilt engines skip the
    /// grow-by-doubling phase.
    pub fn reserve_capacity(&mut self, queue_events: usize, trace_events: usize) {
        self.queue
            .reserve(queue_events.saturating_sub(self.queue.len()));
        self.trace.reserve(trace_events);
    }

    /// Turns on state fingerprinting (and the trace's rolling observable
    /// digest). Must be called before the first `run()`.
    ///
    /// # What the fingerprint covers, and why it is sound
    ///
    /// After every dispatched event the engine folds into one 64-bit FNV-1a
    /// digest everything the run's *future* is a function of:
    ///
    /// * **per-process state** — each process's [`Process::fp_digest`]
    ///   (default: its `Debug` rendering; cached, recomputed only for the
    ///   pid the event touched) plus its engine-side `halted` flag, plus
    ///   any [`Process::fp_times`] instants folded as signed residues
    ///   against the process's *current* local clock;
    /// * **in-flight events** — every queued `(at, seq, content-hash)`
    ///   triple, folded in `(at, seq)` order as `(at − now, content-hash)`.
    ///   The content hash excludes `seq` (so differently-ordered histories
    ///   can converge) but the fold order *is* the dispatch order,
    ///   including `seq` tie-breaks among equal times — two states with
    ///   equal folds dispatch equal events in the same order. Message
    ///   payloads enter via their `Debug` digest; timers via `(pid, id)`;
    /// * **the observable trace** — counters (sent / delivered / per-pid
    ///   delivered / dropped) plus the rolling
    ///   [`Trace::obs_digest`](crate::trace::Trace::obs_digest) over
    ///   time-free, payload-free events — so two states are only identified
    ///   when checkers running over their traces see the same event
    ///   structure (see `obs_digest` for what "time-free" demands of
    ///   checkers);
    /// * **dispatch count** — so `RunReport::events`-derived caps behave
    ///   monotonically across merged prefixes.
    ///
    /// # Clock residues: the fingerprint is time-abstract
    ///
    /// Nothing above folds an *absolute* time. Times enter only where the
    /// run's **future** reads them, and only as offsets from the current
    /// clocks ("clock residues"): queued events as `at − now`, live
    /// process-held timeout anchors via [`Process::fp_times`] as residues
    /// against that process's local clock. Process behaviour is itself a
    /// function of exactly those residues: handlers read time only through
    /// `ctx.now()` comparisons against stored instants and relative timers,
    /// local clocks are affine in real time with per-run-constant
    /// parameters, and queued timers are clamped to `≥ now` at creation.
    /// So two states with equal residue structure — the same configuration
    /// reached earlier or later, e.g. down different σ delay choices —
    /// fingerprint identically and deduplicate, and their futures unfold
    /// event-for-event alike (shifted in time). Two deliberate caveats,
    /// both validated per instance by the differential mode
    /// ([`crate::explore`]):
    ///
    /// * **past timestamps are abstracted away.** Merged runs agree on the
    ///   *order* of halts and marks but may disagree on their timestamps,
    ///   so a checker combined with deduplication must be *time-robust*:
    ///   its verdict may read event or stored times only through predicates
    ///   that hold (or fail) uniformly across all schedules of the
    ///   instance — e.g. the Definition 1 `T` bound, which the timeout
    ///   calculus guarantees for every delay the explorer can choose. A
    ///   checker thresholding on raw timestamps could have a near-threshold
    ///   run pruned as a duplicate of one on the other side;
    /// * **[`EngineConfig::max_real_time`]** — a run near the horizon has
    ///   less slack than its earlier twin. Explorer horizons are sized as a
    ///   many-multiples-of-worst-deadline backstop that quiescent runs
    ///   never reach (same documented-caveat class as
    ///   [`EngineConfig::prune_dead_sends`]); a run truncated by the
    ///   horizon reports `truncated` and fails verdicts loudly rather than
    ///   silently.
    ///
    /// Deliberately **excluded**:
    ///
    /// * `self.now` — by design, per the residue scheme above;
    /// * clock drift/offset parameters — constant per run and identical
    ///   across all schedules of one instance (exploration never varies
    ///   them mid-tree);
    /// * network-model and oracle internals — the explorer's networks
    ///   ([`crate::net::SyncNet`]-style) are stateless per message; a
    ///   stateful net (e.g. per-mille fault counters) would need its own
    ///   digest term before it could be deduplicated soundly.
    ///
    /// Collisions: this is a 64-bit hash — a collision wrongly prunes a
    /// schedule. At the ≤10⁷ states per instance the explorer visits, the
    /// birthday bound puts the collision probability around 10⁻⁵ per
    /// instance; the differential mode ([`crate::explore`]) exists to catch
    /// exactly such discrepancies on instances small enough to enumerate.
    pub fn enable_fingerprints(&mut self) {
        assert!(!self.started, "enable_fingerprints() before run()");
        if self.fp.is_none() {
            self.trace.enable_digest();
            self.fp = Some(FpState {
                probe: None,
                proc_digests: Vec::new(),
                dispatched: 0,
                scratch: Vec::new(),
                times_scratch: Vec::new(),
                deduped: false,
            });
        }
    }

    /// Installs the seen-set probe consulted after every dispatched event
    /// (requires [`Engine::enable_fingerprints`]). Returning `true` from the
    /// probe stops the run; [`Engine::was_deduped`] reports the cut.
    pub fn set_fingerprint_probe(&mut self, probe: Box<dyn FnMut(u64) -> bool>) {
        let fp = self
            .fp
            .as_mut()
            .expect("set_fingerprint_probe requires enable_fingerprints()");
        fp.probe = Some(probe);
    }

    /// Sets [`EngineConfig::prune_dead_sends`] after construction — the
    /// reduced explorer flips it on engines built by mode-agnostic `build`
    /// closures. Must be called before the first `run()`.
    pub fn set_prune_dead_sends(&mut self, on: bool) {
        assert!(!self.started, "set_prune_dead_sends() before run()");
        self.cfg.prune_dead_sends = on;
    }

    /// True if the last `run()` was cut short by the fingerprint probe.
    pub fn was_deduped(&self) -> bool {
        self.fp.as_ref().is_some_and(|fp| fp.deduped)
    }

    /// Oracle choices elided by [`EngineConfig::prune_dead_sends`] so far.
    pub fn dead_branch_prunes(&self) -> u64 {
        self.dead_branch_prunes
    }

    /// The current state fingerprint, when fingerprinting is enabled.
    pub fn state_fingerprint(&mut self) -> Option<u64> {
        if self.fp.is_some() {
            self.refresh_proc_digests();
            Some(self.compute_fingerprint())
        } else {
            None
        }
    }

    /// Content hash of an event, independent of its queue sequence number.
    fn event_hash(kind: &EventKind<M>) -> u64 {
        let mut h = Fnv64::new();
        match kind {
            EventKind::Start(pid) => {
                h.write_u64(1);
                h.write_usize(*pid);
            }
            EventKind::Deliver { from, to, msg } => {
                h.write_u64(2);
                h.write_usize(*from);
                h.write_usize(*to);
                h.write_u64(debug_digest(msg));
            }
            EventKind::Timer { pid, id } => {
                h.write_u64(3);
                h.write_usize(*pid);
                h.write_u64(*id);
            }
        }
        h.finish()
    }

    /// The process an event's dispatch can mutate.
    fn target_pid(kind: &EventKind<M>) -> Pid {
        match kind {
            EventKind::Start(pid) => *pid,
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { pid, .. } => *pid,
        }
    }

    /// (Re)fills the per-process digest cache for newly added processes.
    fn refresh_proc_digests(&mut self) {
        let Self {
            ref mut fp,
            ref procs,
            ..
        } = *self;
        if let Some(fp) = fp.as_mut() {
            if fp.proc_digests.len() != procs.len() {
                fp.proc_digests = procs.iter().map(|s| s.proc.fp_digest()).collect();
            }
        }
    }

    /// Folds the full state fingerprint; see [`Engine::enable_fingerprints`]
    /// for the coverage contract. Requires `self.fp` to be populated.
    fn compute_fingerprint(&mut self) -> u64 {
        let Self {
            ref mut fp,
            ref procs,
            ref queue,
            ref trace,
            now,
            ..
        } = *self;
        let fp = fp.as_mut().expect("fingerprinting enabled");
        let mut h = Fnv64::new();
        h.write_u64(fp.dispatched);
        h.write_usize(trace.sent_count());
        h.write_usize(trace.delivered_total());
        h.write_usize(trace.dropped_count());
        for pid in 0..procs.len() {
            h.write_usize(trace.delivered_count(pid));
        }
        h.write_u64(trace.obs_digest().unwrap_or(0));
        for (slot, digest) in procs.iter().zip(&fp.proc_digests) {
            h.write_bool(slot.halted);
            h.write_u64(*digest);
            fp.times_scratch.clear();
            slot.proc.fp_times(&mut fp.times_scratch);
            if !fp.times_scratch.is_empty() {
                let local = slot.clock.local_at(now);
                h.write_usize(fp.times_scratch.len());
                for &t in fp.times_scratch.iter() {
                    // Signed residue: keeps "how far past the instant we
                    // already are" distinct from "how far before it we are".
                    h.write_i64(t.ticks() as i64 - local.ticks() as i64);
                }
            }
        }
        fp.scratch.clear();
        for Reverse(ev) in queue.iter() {
            fp.scratch.push((ev.at, ev.seq, ev.ehash));
        }
        fp.scratch.sort_unstable();
        for &(at, _seq, ehash) in fp.scratch.iter() {
            // Offset from the current instant, not the absolute time: two
            // states that are uniform time-translations of each other must
            // fold identically (every queued `at` is ≥ `now`).
            h.write_u64(at.ticks() - now.ticks());
            h.write_u64(ehash);
        }
        h.finish()
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        let ehash = if self.fp.is_some() {
            Self::event_hash(&kind)
        } else {
            0
        };
        self.queue.push(Reverse(Event {
            at,
            seq,
            kind,
            ehash,
        }));
        self.queue_high = self.queue_high.max(self.queue.len());
    }

    /// Runs to quiescence (or horizon / event cap / fingerprint-probe cut —
    /// see [`Engine::was_deduped`]).
    pub fn run(&mut self) -> RunReport {
        if !self.started {
            self.started = true;
            self.refresh_proc_digests();
            for pid in 0..self.procs.len() {
                self.push_event(SimTime::ZERO, EventKind::Start(pid));
            }
        }
        let mut events = 0u64;
        let mut truncated = false;
        while let Some(Reverse(ev)) = self.queue.pop() {
            if ev.at > self.cfg.max_real_time || events >= self.cfg.max_events {
                truncated = true;
                // Put it back conceptually; we simply stop (the queue keeps
                // its contents so callers can resume with a larger horizon).
                self.queue.push(Reverse(ev));
                break;
            }
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            events += 1;
            let fp_pid = self.fp.as_ref().map(|_| Self::target_pid(&ev.kind));
            self.dispatch(ev.kind);
            if let Some(pid) = fp_pid {
                let digest = self.procs[pid].proc.fp_digest();
                let fp = self.fp.as_mut().expect("fp present");
                fp.dispatched += 1;
                fp.proc_digests[pid] = digest;
                let state = self.compute_fingerprint();
                let fp = self.fp.as_mut().expect("fp present");
                let hit = match fp.probe.as_mut() {
                    Some(probe) => probe(state),
                    None => false,
                };
                if hit {
                    fp.deduped = true;
                    break;
                }
            }
        }
        let all_halted = self.procs.iter().all(|p| p.halted);
        RunReport {
            events,
            end_time: self.now,
            quiescent: self.queue.is_empty(),
            all_halted,
            truncated,
        }
    }

    /// Extends the horizon and continues the run — used to distinguish
    /// "terminated" from "would have kept going" in liveness checks.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        self.cfg.max_real_time = horizon;
        self.run()
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Start(pid) => {
                if self.procs[pid].halted {
                    return;
                }
                let local = self.procs[pid].clock.local_at(self.now);
                let mut ctx = Ctx::recycled(pid, local, std::mem::take(&mut self.fx_buf));
                self.procs[pid].proc.on_start(&mut ctx);
                self.apply_effects(pid, ctx.into_effects());
            }
            EventKind::Deliver { from, to, msg } => {
                if self.procs[to].halted {
                    return;
                }
                self.trace.record_delivered(self.now, from, to, &msg);
                let local = self.procs[to].clock.local_at(self.now);
                let mut ctx = Ctx::recycled(to, local, std::mem::take(&mut self.fx_buf));
                self.procs[to].proc.on_message(from, msg, &mut ctx);
                self.apply_effects(to, ctx.into_effects());
            }
            EventKind::Timer { pid, id } => {
                if self.procs[pid].halted {
                    return;
                }
                self.trace.push(self.now, TraceKind::TimerFired { pid, id });
                let local = self.procs[pid].clock.local_at(self.now);
                let mut ctx = Ctx::recycled(pid, local, std::mem::take(&mut self.fx_buf));
                self.procs[pid].proc.on_timer(id, &mut ctx);
                self.apply_effects(pid, ctx.into_effects());
            }
        }
    }

    fn apply_effects(&mut self, pid: Pid, mut effects: Vec<Effect<M>>) {
        // Charge the grey-state computation time once per handler that
        // sends; timers and marks are bookkeeping on the transition itself.
        let has_sends = effects.iter().any(|e| matches!(e, Effect::Send { .. }));
        let prune = self.cfg.prune_dead_sends;
        // Under dead-branch elision, a handler whose every send is addressed
        // to an already-halted process gets its σ draw pinned too: the draw
        // would only shift dead delivery times.
        let live_sends = !prune
            || effects
                .iter()
                .any(|e| matches!(e, Effect::Send { to, .. } if !self.procs[*to].halted));
        let compute = if has_sends && !self.cfg.sigma_max.is_zero() {
            let buckets = self.cfg.sigma_buckets.max(1);
            let idx = if live_sends {
                self.oracle.choose_for(buckets, ChoiceTag::sigma(pid))
            } else {
                self.dead_branch_prunes += 1;
                buckets - 1
            } as u64;
            let buckets = buckets as u64;
            if buckets == 1 {
                self.cfg.sigma_max
            } else {
                SimDuration::from_ticks(self.cfg.sigma_max.ticks() * idx / (buckets - 1))
            }
        } else {
            SimDuration::ZERO
        };
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg } => {
                    let sent_at = self.now + compute;
                    let seq = self.seq;
                    let meta = EnvelopeMeta {
                        from: pid,
                        to,
                        sent_at,
                        seq,
                    };
                    self.trace.record_sent(sent_at, pid, to, &msg);
                    let delivery = if prune && self.procs[to].halted {
                        // Delivery to a halted process is a no-op; route
                        // with a pinned worst-case oracle so no branchable
                        // choice is consumed (see
                        // `EngineConfig::prune_dead_sends`).
                        self.dead_branch_prunes += 1;
                        let mut pinned = FixedOracle::maximal();
                        self.net.route(&meta, &msg, &mut pinned)
                    } else {
                        self.net.route(&meta, &msg, self.oracle.as_mut())
                    };
                    match delivery {
                        Delivery::At(t) => {
                            let at = t.max(sent_at);
                            self.push_event(at, EventKind::Deliver { from: pid, to, msg });
                        }
                        Delivery::Never => {
                            self.trace.record_dropped(sent_at, pid, to, msg);
                        }
                    }
                }
                Effect::SetTimer { id, at_local } => {
                    let real = match self.procs[pid].clock.real_when_local(at_local) {
                        Some(r) => r.max(self.now),
                        None => self.now, // deadline already passed locally
                    };
                    self.push_event(real, EventKind::Timer { pid, id });
                }
                Effect::Halt => {
                    if !self.procs[pid].halted {
                        self.procs[pid].halted = true;
                        let local = self.procs[pid].clock.local_at(self.now);
                        self.trace.push(self.now, TraceKind::Halted { pid, local });
                    }
                }
                Effect::Mark { label, value } => {
                    let local = self.procs[pid].clock.local_at(self.now);
                    self.trace.push(
                        self.now,
                        TraceKind::Mark {
                            pid,
                            local,
                            label,
                            value,
                        },
                    );
                }
            }
        }
        // Hand the (now empty) buffer back for the next dispatch.
        self.fx_buf = effects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_process_boilerplate;
    use crate::net::SyncNet;
    use crate::oracle::RandomOracle;

    /// Ping-pong: A sends counter to B, B returns counter+1, until limit.
    #[derive(Debug, Clone)]
    struct Pinger {
        peer: Pid,
        limit: u32,
        last_seen: u32,
        serve_first: bool,
    }

    impl Process<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            if self.serve_first {
                ctx.send(self.peer, 0);
            }
        }
        fn on_message(&mut self, from: Pid, msg: u32, ctx: &mut Ctx<u32>) {
            self.last_seen = msg;
            if msg >= self.limit {
                ctx.mark("done", msg as i64);
                ctx.halt();
            } else {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    fn ping_pong_engine_mode(seed: u64, sigma: SimDuration, trace_mode: TraceMode) -> Engine<u32> {
        let cfg = EngineConfig {
            sigma_max: sigma,
            sigma_buckets: 4,
            trace_mode,
            ..Default::default()
        };
        let mut eng = Engine::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(100), 8)),
            Box::new(RandomOracle::seeded(seed)),
            cfg,
        );
        eng.add_process(
            Box::new(Pinger {
                peer: 1,
                limit: 10,
                last_seen: 0,
                serve_first: true,
            }),
            DriftClock::perfect(),
        );
        eng.add_process(
            Box::new(Pinger {
                peer: 0,
                limit: 10,
                last_seen: 0,
                serve_first: false,
            }),
            DriftClock::perfect(),
        );
        eng
    }

    fn ping_pong_engine(seed: u64, sigma: SimDuration) -> Engine<u32> {
        ping_pong_engine_mode(seed, sigma, TraceMode::Full)
    }

    #[test]
    fn ping_pong_completes() {
        let mut eng = ping_pong_engine(1, SimDuration::ZERO);
        let report = eng.run();
        assert!(report.quiescent);
        assert!(!report.truncated);
        // Message values 0..=10 → eleven sends.
        assert_eq!(eng.trace().sent_count(), 11);
        let p1 = eng.process_as::<Pinger>(1).unwrap();
        let p0 = eng.process_as::<Pinger>(0).unwrap();
        assert_eq!(p0.last_seen.max(p1.last_seen), 10);
        // Whoever saw 10 halted and marked.
        assert!(eng.trace().marks("done").count() == 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut eng = ping_pong_engine(seed, SimDuration::from_ticks(7));
            let r = eng.run();
            (r.end_time, r.events, eng.trace().events.len())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(
            run(5).0,
            run(6).0,
            "different seeds explore different delays"
        );
    }

    #[test]
    fn compute_delay_shifts_sends() {
        // With σ > 0 and worst-case delays the run takes strictly longer.
        let mut fast = ping_pong_engine(2, SimDuration::ZERO);
        let mut slow = ping_pong_engine(2, SimDuration::from_ticks(1_000));
        let t_fast = fast.run().end_time;
        let t_slow = slow.run().end_time;
        assert!(t_slow > t_fast);
    }

    #[test]
    fn counters_only_runs_bit_identically_to_full() {
        // Same oracle, same schedule: the run report and all counters must
        // coincide; only the stored message events differ.
        let mut full = ping_pong_engine_mode(4, SimDuration::from_ticks(7), TraceMode::Full);
        let mut lean =
            ping_pong_engine_mode(4, SimDuration::from_ticks(7), TraceMode::CountersOnly);
        let rf = full.run();
        let rl = lean.run();
        assert_eq!(rf, rl);
        assert_eq!(full.trace().sent_count(), lean.trace().sent_count());
        assert_eq!(
            full.trace().delivered_total(),
            lean.trace().delivered_total()
        );
        assert_eq!(
            full.trace().delivered_count(0),
            lean.trace().delivered_count(0)
        );
        assert_eq!(full.trace().dropped_count(), lean.trace().dropped_count());
        assert_eq!(full.trace().marks("done").count() as u64, 1);
        assert_eq!(lean.trace().marks("done").count() as u64, 1);
        // The lean trace holds no message payloads.
        assert!(lean.trace().events.iter().all(|e| !matches!(
            e.kind,
            TraceKind::Sent { .. } | TraceKind::Delivered { .. } | TraceKind::Dropped { .. }
        )));
        assert!(full.trace().events.len() > lean.trace().events.len());
    }

    #[test]
    fn queue_high_water_and_reserve() {
        let mut eng = ping_pong_engine(1, SimDuration::ZERO);
        eng.run();
        let high = eng.queue_high_water();
        assert!(high >= 1, "ping-pong keeps at least one event in flight");
        // Pre-sizing a fresh engine is accepted and harmless.
        let mut eng2 = ping_pong_engine(1, SimDuration::ZERO);
        eng2.reserve_capacity(high, eng.trace().events.len());
        let r = eng2.run();
        assert!(r.quiescent);
        assert_eq!(eng2.trace().events.len(), eng.trace().events.len());
    }

    /// A process that sets three timers and records firing order.
    #[derive(Debug, Clone, Default)]
    struct TimerBox {
        fired: Vec<TimerId>,
    }

    impl Process<u32> for TimerBox {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            ctx.set_timer_at(3, SimTime::from_ticks(300));
            ctx.set_timer_at(1, SimTime::from_ticks(100));
            ctx.set_timer_at(2, SimTime::from_ticks(200));
        }
        fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
        fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<u32>) {
            self.fired.push(id);
            if self.fired.len() == 3 {
                ctx.halt();
            }
        }
        impl_process_boilerplate!(u32);
    }

    #[test]
    fn timers_fire_in_local_deadline_order() {
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let pid = eng.add_process(Box::new(TimerBox::default()), DriftClock::perfect());
        let report = eng.run();
        assert!(report.all_halted);
        assert_eq!(
            eng.process_as::<TimerBox>(pid).unwrap().fired,
            vec![1, 2, 3]
        );
    }

    #[test]
    fn fast_clock_reaches_deadline_sooner_in_real_time() {
        // Two processes set a timer for local time 1000; the +10% clock
        // fires earlier in real time than the −10% clock.
        let run_one = |drift_ppm: i64| {
            let mut eng = Engine::<u32>::new(
                Box::new(SyncNet::new(SimDuration::ZERO, 1)),
                Box::new(RandomOracle::seeded(0)),
                EngineConfig::default(),
            );
            let clock = DriftClock::with_drift_ppm(drift_ppm, SimDuration::ZERO);
            #[derive(Debug, Clone, Default)]
            struct OneTimer;
            impl Process<u32> for OneTimer {
                fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                    ctx.set_timer_at(1, SimTime::from_ticks(1_000));
                }
                fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
                fn on_timer(&mut self, _id: TimerId, ctx: &mut Ctx<u32>) {
                    ctx.mark("fired", 0);
                    ctx.halt();
                }
                impl_process_boilerplate!(u32);
            }
            let pid = eng.add_process(Box::new(OneTimer), clock);
            eng.run();
            eng.trace().first_mark(pid, "fired").unwrap()
        };
        let fast = run_one(100_000);
        let slow = run_one(-100_000);
        assert!(fast < slow, "fast {fast:?} vs slow {slow:?}");
    }

    #[test]
    fn horizon_truncates() {
        #[derive(Debug, Clone, Default)]
        struct Babbler;
        impl Process<u32> for Babbler {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.set_timer_after(0, SimDuration::from_ticks(10));
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, ctx: &mut Ctx<u32>) {
                ctx.set_timer_after(0, SimDuration::from_ticks(10));
            }
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig {
                max_real_time: SimTime::from_ticks(1_000),
                ..Default::default()
            },
        );
        eng.add_process(Box::new(Babbler), DriftClock::perfect());
        let report = eng.run();
        assert!(report.truncated);
        assert!(!report.quiescent);
        assert!(report.end_time <= SimTime::from_ticks(1_000));
        // Resuming with a larger horizon continues the same run.
        let report2 = eng.run_until(SimTime::from_ticks(2_000));
        assert!(report2.truncated);
        assert!(report2.end_time > SimTime::from_ticks(900));
    }

    #[test]
    fn event_cap_guards_runaway() {
        #[derive(Debug, Clone, Default)]
        struct Flood;
        impl Process<u32> for Flood {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.send(0, 0); // self-message storm
            }
            fn on_message(&mut self, _f: Pid, m: u32, ctx: &mut Ctx<u32>) {
                ctx.send(0, m + 1);
            }
            fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig {
                max_events: 500,
                ..Default::default()
            },
        );
        eng.add_process(Box::new(Flood), DriftClock::perfect());
        let report = eng.run();
        assert!(report.truncated);
        assert_eq!(report.events, 500);
    }

    #[test]
    fn halted_processes_receive_nothing() {
        #[derive(Debug, Clone, Default)]
        struct QuitsEarly {
            got_after_halt: bool,
        }
        impl Process<u32> for QuitsEarly {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.halt();
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {
                self.got_after_halt = true;
            }
            fn on_timer(&mut self, _id: TimerId, _c: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        #[derive(Debug, Clone, Default)]
        struct Sender;
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.send(0, 1);
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, _c: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(10), 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let quitter = eng.add_process(Box::new(QuitsEarly::default()), DriftClock::perfect());
        eng.add_process(Box::new(Sender), DriftClock::perfect());
        eng.run();
        assert!(eng.is_halted(quitter));
        assert!(
            !eng.process_as::<QuitsEarly>(quitter)
                .unwrap()
                .got_after_halt
        );
    }

    #[test]
    fn fingerprints_deterministic_and_translation_invariant() {
        let fp_of = |seed| {
            let mut eng = ping_pong_engine(seed, SimDuration::from_ticks(7));
            eng.enable_fingerprints();
            eng.run();
            eng.state_fingerprint().unwrap()
        };
        assert_eq!(fp_of(5), fp_of(5), "equal schedules, equal fingerprints");
        // Seeds 5 and 6 run the same ping-pong sequence under different
        // delays: the quiescent states are time-translations of each other,
        // and the clock-residue fingerprint deliberately identifies them.
        assert_eq!(fp_of(5), fp_of(6), "translated runs, equal fingerprints");
        // A run cut mid-way is structurally different (fewer dispatches, a
        // message still in flight): different fingerprint.
        let mut cut = ping_pong_engine(5, SimDuration::from_ticks(7));
        cut.enable_fingerprints();
        let mut calls = 0u32;
        cut.set_fingerprint_probe(Box::new(move |_| {
            calls += 1;
            calls >= 3
        }));
        cut.run();
        assert_ne!(
            cut.state_fingerprint().unwrap(),
            fp_of(5),
            "different progress, different fingerprints"
        );
    }

    #[test]
    fn fingerprinting_does_not_change_the_run() {
        let mut plain = ping_pong_engine(3, SimDuration::from_ticks(7));
        let mut fped = ping_pong_engine(3, SimDuration::from_ticks(7));
        fped.enable_fingerprints();
        assert_eq!(plain.run(), fped.run());
        assert_eq!(plain.trace().sent_count(), fped.trace().sent_count());
    }

    #[test]
    fn fingerprint_probe_cuts_run_short() {
        let mut eng = ping_pong_engine(1, SimDuration::ZERO);
        eng.enable_fingerprints();
        let mut calls = 0u32;
        eng.set_fingerprint_probe(Box::new(move |_| {
            calls += 1;
            calls >= 3
        }));
        let r = eng.run();
        assert!(eng.was_deduped());
        assert_eq!(r.events, 3, "cut after the third dispatch");
        assert!(!r.quiescent);
        assert!(!r.truncated);
    }

    #[test]
    fn prune_dead_sends_elides_choices_for_halted_recipients() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct CountingOracle(Rc<Cell<usize>>);
        impl Oracle for CountingOracle {
            fn choose(&mut self, _options: usize) -> usize {
                self.0.set(self.0.get() + 1);
                0
            }
        }

        #[derive(Debug, Clone, Default)]
        struct HaltsAtStart;
        impl Process<u32> for HaltsAtStart {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.halt();
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, _c: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        #[derive(Debug, Clone, Default)]
        struct SendsToDead;
        impl Process<u32> for SendsToDead {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.send(0, 9);
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, _c: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }

        let run_one = |prune: bool| {
            let draws = Rc::new(Cell::new(0));
            let mut eng = Engine::<u32>::new(
                // 4 delay buckets: routing a live message draws once.
                Box::new(SyncNet::new(SimDuration::from_ticks(10), 4)),
                Box::new(CountingOracle(draws.clone())),
                EngineConfig {
                    sigma_max: SimDuration::from_ticks(8),
                    sigma_buckets: 2,
                    prune_dead_sends: prune,
                    ..Default::default()
                },
            );
            // Pid 0 halts before pid 1's start sends to it (Start events
            // dispatch in registration order at equal time).
            eng.add_process(Box::new(HaltsAtStart), DriftClock::perfect());
            eng.add_process(Box::new(SendsToDead), DriftClock::perfect());
            let r = eng.run();
            assert!(r.quiescent);
            assert_eq!(eng.trace().sent_count(), 1);
            assert_eq!(eng.trace().delivered_total(), 0, "recipient halted");
            (draws.get(), eng.dead_branch_prunes())
        };
        // Unpruned: one σ draw + one delay draw. Pruned: both elided (the
        // handler's only send is dead), counted as two prunes.
        assert_eq!(run_one(false), (2, 0));
        assert_eq!(run_one(true), (0, 2));
    }

    #[test]
    fn past_local_deadline_fires_immediately() {
        #[derive(Debug, Clone, Default)]
        struct PastTimer {
            fired_at: Option<SimTime>,
        }
        impl Process<u32> for PastTimer {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                // Clock offset is 500: local deadline 100 is already past.
                ctx.set_timer_at(1, SimTime::from_ticks(100));
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, ctx: &mut Ctx<u32>) {
                self.fired_at = Some(ctx.now());
                ctx.halt();
            }
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let pid = eng.add_process(
            Box::new(PastTimer::default()),
            DriftClock::with_drift_ppm(0, SimDuration::from_ticks(500)),
        );
        let report = eng.run();
        assert!(report.all_halted);
        let p = eng.process_as::<PastTimer>(pid).unwrap();
        assert_eq!(
            p.fired_at,
            Some(SimTime::from_ticks(500)),
            "fired at once, local now"
        );
    }
}
