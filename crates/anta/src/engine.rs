//! The deterministic discrete-event engine executing an Asynchronous
//! Network of Timed Automata.
//!
//! Semantics follow §4 of the paper:
//!
//! * each process owns a drifting local clock; *all* protocol-visible time
//!   is local (`Ctx::now`), while the engine itself runs on real time;
//! * **white (input) states**: a process sits idle until a message delivery
//!   or a local-clock timeout enables a transition — modelled by
//!   `on_message` / `on_timer`;
//! * **grey (output) states**: "an automaton spends a bounded amount of
//!   time calculating in each grey state" — modelled by charging a
//!   computation delay in `[0, σ_max]` (oracle-quantised) to every handler
//!   invocation that sends messages;
//! * message transit is decided by the pluggable [`NetModel`].
//!
//! Determinism: the priority queue orders events by `(real_time, seq)` where
//! `seq` is a global monotone counter, so runs are bit-reproducible given
//! the same oracle; all randomness flows through [`Oracle`].

use crate::clock::DriftClock;
use crate::net::{Delivery, EnvelopeMeta, NetModel};
use crate::oracle::Oracle;
use crate::process::{Ctx, Effect, Message, Pid, Process, TimerId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind, TraceMode};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard horizon on real simulation time; runs stop at the first event
    /// beyond it. "Eventually" in liveness properties is checked against
    /// generous horizons.
    pub max_real_time: SimTime,
    /// Runaway guard: maximum number of dispatched events.
    pub max_events: u64,
    /// Maximum computation time charged to a sending handler (σ).
    pub sigma_max: SimDuration,
    /// Quantisation of the computation delay (1 ⇒ always σ_max).
    pub sigma_buckets: usize,
    /// How much of the run the trace records. [`TraceMode::CountersOnly`]
    /// skips storing (and cloning) message payloads — the right choice for
    /// exhaustive exploration and sweeps, where only counters, marks and
    /// halts are read back.
    pub trace_mode: TraceMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_real_time: SimTime::from_secs(3_600),
            max_events: 5_000_000,
            sigma_max: SimDuration::ZERO,
            sigma_buckets: 1,
            trace_mode: TraceMode::Full,
        }
    }
}

/// Why and how a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Events dispatched.
    pub events: u64,
    /// Real time of the last dispatched event.
    pub end_time: SimTime,
    /// True if the event queue drained (nothing left to happen).
    pub quiescent: bool,
    /// True if every process halted.
    pub all_halted: bool,
    /// True if the run stopped at the time horizon or event cap instead of
    /// draining.
    pub truncated: bool,
}

struct ProcSlot<M> {
    proc: Box<dyn Process<M>>,
    clock: DriftClock,
    halted: bool,
}

enum EventKind<M> {
    Start(Pid),
    Deliver { from: Pid, to: Pid, msg: M },
    Timer { pid: Pid, id: TimerId },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulator.
pub struct Engine<M: Message> {
    procs: Vec<ProcSlot<M>>,
    net: Box<dyn NetModel<M>>,
    oracle: Box<dyn Oracle>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    seq: u64,
    now: SimTime,
    trace: Trace<M>,
    cfg: EngineConfig,
    started: bool,
    /// Recycled effects buffer, handed to each handler's `Ctx` and taken
    /// back after dispatch — one allocation per run, not per handler.
    fx_buf: Vec<Effect<M>>,
    /// High-water mark of the event queue, for pre-sizing repeated runs.
    queue_high: usize,
}

impl<M: Message> Engine<M> {
    /// Creates an engine over a network model and an oracle.
    pub fn new(net: Box<dyn NetModel<M>>, oracle: Box<dyn Oracle>, cfg: EngineConfig) -> Self {
        let trace = Trace::with_mode(cfg.trace_mode);
        Engine {
            procs: Vec::new(),
            net,
            oracle,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            trace,
            cfg,
            started: false,
            fx_buf: Vec::new(),
            queue_high: 0,
        }
    }

    /// Registers a process with its local clock; returns its [`Pid`]
    /// (dense, in registration order).
    pub fn add_process(&mut self, proc: Box<dyn Process<M>>, clock: DriftClock) -> Pid {
        assert!(!self.started, "processes must be added before run()");
        let pid = self.procs.len();
        self.procs.push(ProcSlot {
            proc,
            clock,
            halted: false,
        });
        pid
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if no processes are registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Current real simulation time.
    pub fn real_now(&self) -> SimTime {
        self.now
    }

    /// `pid`'s local clock reading at the current real time.
    pub fn local_now(&self, pid: Pid) -> SimTime {
        self.procs[pid].clock.local_at(self.now)
    }

    /// Immutable access to a process, downcast to its concrete type.
    /// Returns `None` for a wrong type; panics on a bad pid.
    pub fn process_as<T: 'static>(&self, pid: Pid) -> Option<&T> {
        self.procs[pid].proc.as_any().downcast_ref::<T>()
    }

    /// Whether `pid` has halted.
    pub fn is_halted(&self, pid: Pid) -> bool {
        self.procs[pid].halted
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<M> {
        &self.trace
    }

    /// Consumes the engine, yielding the trace.
    pub fn into_trace(self) -> Trace<M> {
        self.trace
    }

    /// Largest number of events the queue held at any point so far — the
    /// capacity a repeat of a comparable run needs.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high
    }

    /// Pre-sizes the event queue and (in [`TraceMode::Full`]) the trace
    /// buffer. The schedule explorer calls this between runs with the
    /// previous run's high-water marks so rebuilt engines skip the
    /// grow-by-doubling phase.
    pub fn reserve_capacity(&mut self, queue_events: usize, trace_events: usize) {
        self.queue
            .reserve(queue_events.saturating_sub(self.queue.len()));
        self.trace.reserve(trace_events);
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
        self.queue_high = self.queue_high.max(self.queue.len());
    }

    /// Runs to quiescence (or horizon / event cap).
    pub fn run(&mut self) -> RunReport {
        if !self.started {
            self.started = true;
            for pid in 0..self.procs.len() {
                self.push_event(SimTime::ZERO, EventKind::Start(pid));
            }
        }
        let mut events = 0u64;
        let mut truncated = false;
        while let Some(Reverse(ev)) = self.queue.pop() {
            if ev.at > self.cfg.max_real_time || events >= self.cfg.max_events {
                truncated = true;
                // Put it back conceptually; we simply stop (the queue keeps
                // its contents so callers can resume with a larger horizon).
                self.queue.push(Reverse(ev));
                break;
            }
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            events += 1;
            self.dispatch(ev.kind);
        }
        let all_halted = self.procs.iter().all(|p| p.halted);
        RunReport {
            events,
            end_time: self.now,
            quiescent: self.queue.is_empty(),
            all_halted,
            truncated,
        }
    }

    /// Extends the horizon and continues the run — used to distinguish
    /// "terminated" from "would have kept going" in liveness checks.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        self.cfg.max_real_time = horizon;
        self.run()
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Start(pid) => {
                if self.procs[pid].halted {
                    return;
                }
                let local = self.procs[pid].clock.local_at(self.now);
                let mut ctx = Ctx::recycled(pid, local, std::mem::take(&mut self.fx_buf));
                self.procs[pid].proc.on_start(&mut ctx);
                self.apply_effects(pid, ctx.into_effects());
            }
            EventKind::Deliver { from, to, msg } => {
                if self.procs[to].halted {
                    return;
                }
                self.trace.record_delivered(self.now, from, to, &msg);
                let local = self.procs[to].clock.local_at(self.now);
                let mut ctx = Ctx::recycled(to, local, std::mem::take(&mut self.fx_buf));
                self.procs[to].proc.on_message(from, msg, &mut ctx);
                self.apply_effects(to, ctx.into_effects());
            }
            EventKind::Timer { pid, id } => {
                if self.procs[pid].halted {
                    return;
                }
                self.trace.push(self.now, TraceKind::TimerFired { pid, id });
                let local = self.procs[pid].clock.local_at(self.now);
                let mut ctx = Ctx::recycled(pid, local, std::mem::take(&mut self.fx_buf));
                self.procs[pid].proc.on_timer(id, &mut ctx);
                self.apply_effects(pid, ctx.into_effects());
            }
        }
    }

    fn apply_effects(&mut self, pid: Pid, mut effects: Vec<Effect<M>>) {
        // Charge the grey-state computation time once per handler that
        // sends; timers and marks are bookkeeping on the transition itself.
        let has_sends = effects.iter().any(|e| matches!(e, Effect::Send { .. }));
        let compute = if has_sends && !self.cfg.sigma_max.is_zero() {
            let idx = self.oracle.choose(self.cfg.sigma_buckets.max(1)) as u64;
            let buckets = self.cfg.sigma_buckets.max(1) as u64;
            if buckets == 1 {
                self.cfg.sigma_max
            } else {
                SimDuration::from_ticks(self.cfg.sigma_max.ticks() * idx / (buckets - 1))
            }
        } else {
            SimDuration::ZERO
        };
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg } => {
                    let sent_at = self.now + compute;
                    let seq = self.seq;
                    let meta = EnvelopeMeta {
                        from: pid,
                        to,
                        sent_at,
                        seq,
                    };
                    self.trace.record_sent(sent_at, pid, to, &msg);
                    match self.net.route(&meta, &msg, self.oracle.as_mut()) {
                        Delivery::At(t) => {
                            let at = t.max(sent_at);
                            self.push_event(at, EventKind::Deliver { from: pid, to, msg });
                        }
                        Delivery::Never => {
                            self.trace.record_dropped(sent_at, pid, to, msg);
                        }
                    }
                }
                Effect::SetTimer { id, at_local } => {
                    let real = match self.procs[pid].clock.real_when_local(at_local) {
                        Some(r) => r.max(self.now),
                        None => self.now, // deadline already passed locally
                    };
                    self.push_event(real, EventKind::Timer { pid, id });
                }
                Effect::Halt => {
                    if !self.procs[pid].halted {
                        self.procs[pid].halted = true;
                        let local = self.procs[pid].clock.local_at(self.now);
                        self.trace.push(self.now, TraceKind::Halted { pid, local });
                    }
                }
                Effect::Mark { label, value } => {
                    let local = self.procs[pid].clock.local_at(self.now);
                    self.trace.push(
                        self.now,
                        TraceKind::Mark {
                            pid,
                            local,
                            label,
                            value,
                        },
                    );
                }
            }
        }
        // Hand the (now empty) buffer back for the next dispatch.
        self.fx_buf = effects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_process_boilerplate;
    use crate::net::SyncNet;
    use crate::oracle::RandomOracle;

    /// Ping-pong: A sends counter to B, B returns counter+1, until limit.
    #[derive(Debug, Clone)]
    struct Pinger {
        peer: Pid,
        limit: u32,
        last_seen: u32,
        serve_first: bool,
    }

    impl Process<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            if self.serve_first {
                ctx.send(self.peer, 0);
            }
        }
        fn on_message(&mut self, from: Pid, msg: u32, ctx: &mut Ctx<u32>) {
            self.last_seen = msg;
            if msg >= self.limit {
                ctx.mark("done", msg as i64);
                ctx.halt();
            } else {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    fn ping_pong_engine_mode(seed: u64, sigma: SimDuration, trace_mode: TraceMode) -> Engine<u32> {
        let cfg = EngineConfig {
            sigma_max: sigma,
            sigma_buckets: 4,
            trace_mode,
            ..Default::default()
        };
        let mut eng = Engine::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(100), 8)),
            Box::new(RandomOracle::seeded(seed)),
            cfg,
        );
        eng.add_process(
            Box::new(Pinger {
                peer: 1,
                limit: 10,
                last_seen: 0,
                serve_first: true,
            }),
            DriftClock::perfect(),
        );
        eng.add_process(
            Box::new(Pinger {
                peer: 0,
                limit: 10,
                last_seen: 0,
                serve_first: false,
            }),
            DriftClock::perfect(),
        );
        eng
    }

    fn ping_pong_engine(seed: u64, sigma: SimDuration) -> Engine<u32> {
        ping_pong_engine_mode(seed, sigma, TraceMode::Full)
    }

    #[test]
    fn ping_pong_completes() {
        let mut eng = ping_pong_engine(1, SimDuration::ZERO);
        let report = eng.run();
        assert!(report.quiescent);
        assert!(!report.truncated);
        // Message values 0..=10 → eleven sends.
        assert_eq!(eng.trace().sent_count(), 11);
        let p1 = eng.process_as::<Pinger>(1).unwrap();
        let p0 = eng.process_as::<Pinger>(0).unwrap();
        assert_eq!(p0.last_seen.max(p1.last_seen), 10);
        // Whoever saw 10 halted and marked.
        assert!(eng.trace().marks("done").count() == 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut eng = ping_pong_engine(seed, SimDuration::from_ticks(7));
            let r = eng.run();
            (r.end_time, r.events, eng.trace().events.len())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(
            run(5).0,
            run(6).0,
            "different seeds explore different delays"
        );
    }

    #[test]
    fn compute_delay_shifts_sends() {
        // With σ > 0 and worst-case delays the run takes strictly longer.
        let mut fast = ping_pong_engine(2, SimDuration::ZERO);
        let mut slow = ping_pong_engine(2, SimDuration::from_ticks(1_000));
        let t_fast = fast.run().end_time;
        let t_slow = slow.run().end_time;
        assert!(t_slow > t_fast);
    }

    #[test]
    fn counters_only_runs_bit_identically_to_full() {
        // Same oracle, same schedule: the run report and all counters must
        // coincide; only the stored message events differ.
        let mut full = ping_pong_engine_mode(4, SimDuration::from_ticks(7), TraceMode::Full);
        let mut lean =
            ping_pong_engine_mode(4, SimDuration::from_ticks(7), TraceMode::CountersOnly);
        let rf = full.run();
        let rl = lean.run();
        assert_eq!(rf, rl);
        assert_eq!(full.trace().sent_count(), lean.trace().sent_count());
        assert_eq!(
            full.trace().delivered_total(),
            lean.trace().delivered_total()
        );
        assert_eq!(
            full.trace().delivered_count(0),
            lean.trace().delivered_count(0)
        );
        assert_eq!(full.trace().dropped_count(), lean.trace().dropped_count());
        assert_eq!(full.trace().marks("done").count() as u64, 1);
        assert_eq!(lean.trace().marks("done").count() as u64, 1);
        // The lean trace holds no message payloads.
        assert!(lean.trace().events.iter().all(|e| !matches!(
            e.kind,
            TraceKind::Sent { .. } | TraceKind::Delivered { .. } | TraceKind::Dropped { .. }
        )));
        assert!(full.trace().events.len() > lean.trace().events.len());
    }

    #[test]
    fn queue_high_water_and_reserve() {
        let mut eng = ping_pong_engine(1, SimDuration::ZERO);
        eng.run();
        let high = eng.queue_high_water();
        assert!(high >= 1, "ping-pong keeps at least one event in flight");
        // Pre-sizing a fresh engine is accepted and harmless.
        let mut eng2 = ping_pong_engine(1, SimDuration::ZERO);
        eng2.reserve_capacity(high, eng.trace().events.len());
        let r = eng2.run();
        assert!(r.quiescent);
        assert_eq!(eng2.trace().events.len(), eng.trace().events.len());
    }

    /// A process that sets three timers and records firing order.
    #[derive(Debug, Clone, Default)]
    struct TimerBox {
        fired: Vec<TimerId>,
    }

    impl Process<u32> for TimerBox {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            ctx.set_timer_at(3, SimTime::from_ticks(300));
            ctx.set_timer_at(1, SimTime::from_ticks(100));
            ctx.set_timer_at(2, SimTime::from_ticks(200));
        }
        fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
        fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<u32>) {
            self.fired.push(id);
            if self.fired.len() == 3 {
                ctx.halt();
            }
        }
        impl_process_boilerplate!(u32);
    }

    #[test]
    fn timers_fire_in_local_deadline_order() {
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let pid = eng.add_process(Box::new(TimerBox::default()), DriftClock::perfect());
        let report = eng.run();
        assert!(report.all_halted);
        assert_eq!(
            eng.process_as::<TimerBox>(pid).unwrap().fired,
            vec![1, 2, 3]
        );
    }

    #[test]
    fn fast_clock_reaches_deadline_sooner_in_real_time() {
        // Two processes set a timer for local time 1000; the +10% clock
        // fires earlier in real time than the −10% clock.
        let run_one = |drift_ppm: i64| {
            let mut eng = Engine::<u32>::new(
                Box::new(SyncNet::new(SimDuration::ZERO, 1)),
                Box::new(RandomOracle::seeded(0)),
                EngineConfig::default(),
            );
            let clock = DriftClock::with_drift_ppm(drift_ppm, SimDuration::ZERO);
            #[derive(Debug, Clone, Default)]
            struct OneTimer;
            impl Process<u32> for OneTimer {
                fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                    ctx.set_timer_at(1, SimTime::from_ticks(1_000));
                }
                fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
                fn on_timer(&mut self, _id: TimerId, ctx: &mut Ctx<u32>) {
                    ctx.mark("fired", 0);
                    ctx.halt();
                }
                impl_process_boilerplate!(u32);
            }
            let pid = eng.add_process(Box::new(OneTimer), clock);
            eng.run();
            eng.trace().first_mark(pid, "fired").unwrap()
        };
        let fast = run_one(100_000);
        let slow = run_one(-100_000);
        assert!(fast < slow, "fast {fast:?} vs slow {slow:?}");
    }

    #[test]
    fn horizon_truncates() {
        #[derive(Debug, Clone, Default)]
        struct Babbler;
        impl Process<u32> for Babbler {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.set_timer_after(0, SimDuration::from_ticks(10));
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, ctx: &mut Ctx<u32>) {
                ctx.set_timer_after(0, SimDuration::from_ticks(10));
            }
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig {
                max_real_time: SimTime::from_ticks(1_000),
                ..Default::default()
            },
        );
        eng.add_process(Box::new(Babbler), DriftClock::perfect());
        let report = eng.run();
        assert!(report.truncated);
        assert!(!report.quiescent);
        assert!(report.end_time <= SimTime::from_ticks(1_000));
        // Resuming with a larger horizon continues the same run.
        let report2 = eng.run_until(SimTime::from_ticks(2_000));
        assert!(report2.truncated);
        assert!(report2.end_time > SimTime::from_ticks(900));
    }

    #[test]
    fn event_cap_guards_runaway() {
        #[derive(Debug, Clone, Default)]
        struct Flood;
        impl Process<u32> for Flood {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.send(0, 0); // self-message storm
            }
            fn on_message(&mut self, _f: Pid, m: u32, ctx: &mut Ctx<u32>) {
                ctx.send(0, m + 1);
            }
            fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig {
                max_events: 500,
                ..Default::default()
            },
        );
        eng.add_process(Box::new(Flood), DriftClock::perfect());
        let report = eng.run();
        assert!(report.truncated);
        assert_eq!(report.events, 500);
    }

    #[test]
    fn halted_processes_receive_nothing() {
        #[derive(Debug, Clone, Default)]
        struct QuitsEarly {
            got_after_halt: bool,
        }
        impl Process<u32> for QuitsEarly {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.halt();
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {
                self.got_after_halt = true;
            }
            fn on_timer(&mut self, _id: TimerId, _c: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        #[derive(Debug, Clone, Default)]
        struct Sender;
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.send(0, 1);
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, _c: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(10), 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let quitter = eng.add_process(Box::new(QuitsEarly::default()), DriftClock::perfect());
        eng.add_process(Box::new(Sender), DriftClock::perfect());
        eng.run();
        assert!(eng.is_halted(quitter));
        assert!(
            !eng.process_as::<QuitsEarly>(quitter)
                .unwrap()
                .got_after_halt
        );
    }

    #[test]
    fn past_local_deadline_fires_immediately() {
        #[derive(Debug, Clone, Default)]
        struct PastTimer {
            fired_at: Option<SimTime>,
        }
        impl Process<u32> for PastTimer {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                // Clock offset is 500: local deadline 100 is already past.
                ctx.set_timer_at(1, SimTime::from_ticks(100));
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _id: TimerId, ctx: &mut Ctx<u32>) {
                self.fired_at = Some(ctx.now());
                ctx.halt();
            }
            impl_process_boilerplate!(u32);
        }
        let mut eng = Engine::<u32>::new(
            Box::new(SyncNet::new(SimDuration::ZERO, 1)),
            Box::new(RandomOracle::seeded(0)),
            EngineConfig::default(),
        );
        let pid = eng.add_process(
            Box::new(PastTimer::default()),
            DriftClock::with_drift_ppm(0, SimDuration::from_ticks(500)),
        );
        let report = eng.run();
        assert!(report.all_halted);
        let p = eng.process_as::<PastTimer>(pid).unwrap();
        assert_eq!(
            p.fired_at,
            Some(SimTime::from_ticks(500)),
            "fired at once, local now"
        );
    }
}
