//! Exhaustive schedule exploration (systematic concurrency testing).
//!
//! For small protocol instances the space of scheduler choices — which
//! delay bucket each message takes, how long each grey state computes — is
//! finite once quantised. This module enumerates *every* path of that choice
//! tree (depth-first, lexicographic) and checks a safety predicate on each
//! complete run. It is the executable counterpart of the paper's "for every
//! execution" quantifier over the safety clauses ES and CS1–CS3, applied to
//! bounded instances, and is used by experiment E4 to cross-check the
//! Figure 2 automata against the theorems on all schedules of small chains.
//!
//! The mechanism: the engine draws every nondeterministic choice from an
//! [`Oracle`]; a [`ReplayOracle`] replays a prescribed prefix and records the
//! branching degree at each step; [`explore`] re-runs the simulation with
//! successive prefixes until the whole tree is covered (or a run budget is
//! hit). Because runs are deterministic given the oracle, path enumeration
//! is exactly schedule enumeration — no state snapshotting is needed.
//!
//! ## Reduced exploration ([`ExploreMode::Reduced`])
//!
//! Full enumeration scales as the product of branching degrees — ~4k leaves
//! for a 2-party chain at one σ bucket, ~10⁷ already at four. The reduced
//! mode prunes the tree without losing any distinct behaviour, using two
//! mechanisms whose soundness arguments live on the engine:
//!
//! * **state-hash deduplication** — the engine fingerprints its complete
//!   state after every event ([`Engine::enable_fingerprints`]); when a run
//!   re-enters a state any schedule has already left (first fresh choice
//!   made, i.e. [`ReplayOracle::replay_done`]), the run is cut and the whole
//!   choice subtree below the convergence point is skipped. This is where
//!   partial-order reduction lives in this engine: event *dispatch order* is
//!   already determinised by `(time, seq)`, so there are no raw interleaving
//!   choices to commute — instead, independent choices (a delay bucket here,
//!   a σ draw there) that land on the same global state are recognised *as*
//!   the same state and explored once. Two delay buckets that quantise to
//!   the same tick, or a fast-bucket/slow-σ pair meeting a slow-bucket/
//!   fast-σ pair, collapse exactly as commuting actions do in classic DPOR.
//!   The fingerprint is *time-abstract* (clock residues — queued events as
//!   offsets from `now`, live timeout anchors as residues against their
//!   local clock, past timestamps not at all), so schedules that reach the
//!   same configuration earlier or later also merge; the matching
//!   time-robustness contract on checkers lives on
//!   [`Engine::enable_fingerprints`];
//! * **dead-branch elision** — choices that only affect messages addressed
//!   to already-halted processes decide nothing observable; with
//!   [`ExploreConfig::prune_dead_sends`] the engine pins them instead of
//!   branching
//!   ([`EngineConfig::prune_dead_sends`](crate::engine::EngineConfig::prune_dead_sends)
//!   documents the independence argument and its `end_time` caveat).
//!
//! Budget semantics: [`ExploreLimits::max_runs`] / [`ExploreConfig::max_runs`]
//! count **executed** schedules — runs cut by the deduplicator are refunded,
//! so the same budget buys the same number of complete, checked runs in both
//! modes. Deduplicated cuts are reported separately
//! ([`ExploreReport::dedup_hits`]).
//!
//! Correctness insurance: [`explore_differential`] runs full and reduced
//! exploration back to back and compares exhaustion, verdict, and the
//! *distinct violation set* (reduced mode executes one representative per
//! converged state, so it reports each distinct violation at least once but
//! not once per schedule).
//!
//! ## Parallel exploration
//!
//! Schedules are independent runs, so the tree is embarrassingly parallel
//! once partitioned. In full mode, [`explore_parallel`] first enumerates the
//! choice tree down to a configurable *split depth* (each frontier node
//! discovered with one run, its leftmost leaf), then farms the resulting
//! disjoint subtree prefixes to scoped worker threads over a work-stealing
//! cursor — the same no-unsafe pattern as the experiment sweeps. Every
//! worker runs the plain serial DFS restricted to its prefix, so when the
//! tree is exhausted the result is **bit-identical** to the serial explorer:
//! same run count, same violations, merged back in lexicographic (serial
//! DFS) order. When the run budget intervenes, the run *count* still matches
//! the serial explorer but which schedules got visited may differ between
//! thread counts.
//!
//! Reduced mode makes subtree sizes wildly uneven (a subtree can collapse
//! to a single deduplicated cut), so it replaces the fixed frontier with a
//! shared work queue plus **dynamic re-splitting**: whenever a worker
//! notices an idle peer, it donates the unvisited sibling subtrees at the
//! shallowest still-open level of its own DFS position and deepens its own
//! prefix ([`ExploreReport::resplits`] counts donations). Deduplication
//! uses per-worker local caches backed by a sharded global seen-set, so the
//! hot path takes at most one shard lock per fresh state. Reduced-mode
//! reports are deterministic in verdict (exhaustion, distinct violations)
//! but — unlike full mode — *which* representative schedule reaches a state
//! first depends on thread timing; violations are merged in path order.

use crate::engine::{Engine, RunReport};
use crate::oracle::{Oracle, ReplayOracle};
use crate::process::Message;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use telemetry::{Event, NullSink, TelemetrySink};

/// Budget for an exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum number of complete runs (tree leaves) to **execute**. Runs
    /// cut short by state-hash deduplication do not count against this
    /// budget (their slot is refunded), so the limit means the same thing
    /// in full and reduced modes: how many complete schedules get checked.
    pub max_runs: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_runs: 1_000_000,
        }
    }
}

/// Exploration strategy: every schedule, or one representative per
/// distinct behaviour (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreMode {
    /// Enumerate every leaf of the choice tree. Bit-reproducible across
    /// thread counts; the reference reduced mode is checked against.
    #[default]
    Full,
    /// State-hash deduplication + dead-branch elision + dynamic
    /// re-splitting. Same exhaustion verdict and distinct violation set as
    /// [`ExploreMode::Full`], at a fraction of the executed runs.
    Reduced,
}

/// Configuration for [`explore_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum number of complete runs (tree leaves) to **execute**, across
    /// all threads; deduplicated cuts are refunded (see
    /// [`ExploreLimits::max_runs`]).
    pub max_runs: usize,
    /// Worker threads. `0` ⇒ all available cores; `1` ⇒ the serial
    /// explorer, unchanged.
    pub threads: usize,
    /// Full mode only: choice-tree depth at which the tree is split into
    /// per-worker subtrees. Small depths give few, large subtrees (poor
    /// balance); large depths make the serial discovery phase enumerate
    /// more frontier nodes (one run each). With `b`-way branching expect
    /// about `b^split_depth` subtrees; the default suits 2-bucket
    /// instances. Reduced mode ignores it and re-splits dynamically.
    pub split_depth: usize,
    /// Exploration strategy.
    pub mode: ExploreMode,
    /// Reduced mode only: additionally pin choices that only affect
    /// messages to already-halted processes
    /// ([`EngineConfig::prune_dead_sends`](crate::engine::EngineConfig::prune_dead_sends)).
    /// Ignored in full mode (full enumeration is the unpruned reference).
    pub prune_dead_sends: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_runs: ExploreLimits::default().max_runs,
            threads: 1,
            split_depth: 4,
            mode: ExploreMode::Full,
            prune_dead_sends: false,
        }
    }
}

impl ExploreConfig {
    /// Default limits with the given worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExploreConfig {
            threads,
            ..Self::default()
        }
    }

    /// Reduced exploration with dead-branch elision on — the configuration
    /// E4 uses for instances full enumeration cannot exhaust.
    pub fn reduced(threads: usize) -> Self {
        ExploreConfig {
            mode: ExploreMode::Reduced,
            prune_dead_sends: true,
            ..Self::with_threads(threads)
        }
    }
}

/// A safety violation found on one schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The oracle choice path reproducing the failing schedule. Paths from
    /// reduced explorations with [`ExploreConfig::prune_dead_sends`] must
    /// be replayed with [`replay_pruned`] (elided choices are absent from
    /// the path).
    pub path: Vec<usize>,
    /// Checker-provided description.
    pub message: String,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Complete runs executed (checked). Deduplicated cuts excluded.
    pub runs: usize,
    /// True when the entire choice tree was covered within budget.
    pub exhausted: bool,
    /// All violations found (one per failing executed schedule).
    pub violations: Vec<Violation>,
    /// Reduced mode: runs cut short because they re-entered a state some
    /// schedule had already covered (each cut skips a whole subtree).
    pub dedup_hits: usize,
    /// Reduced mode: oracle choices elided as dead branches
    /// (see [`ExploreConfig::prune_dead_sends`]).
    pub dead_branch_prunes: u64,
    /// Reduced mode: dynamic re-splits (work donations to idle workers).
    pub resplits: usize,
    /// Set by [`explore_differential`]: the executed-run count of the full
    /// enumeration this reduced report was checked against, enabling
    /// [`ExploreReport::reduction_ratio`].
    pub full_tree_runs: Option<usize>,
}

impl ExploreReport {
    /// True when every explored schedule satisfied the checker.
    pub fn all_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Executed runs over the full tree's leaf count — the fraction of the
    /// schedule space the reduced exploration had to execute (≤ 1; lower
    /// is better). Available when the full count is known
    /// ([`ExploreReport::full_tree_runs`], set by [`explore_differential`]).
    pub fn reduction_ratio(&self) -> Option<f64> {
        self.full_tree_runs
            .filter(|&full| full > 0)
            .map(|full| self.runs as f64 / full as f64)
    }

    /// Fraction of attempted runs cut by deduplication — a full-count-free
    /// proxy for the reduction on instances too big to enumerate fully.
    /// Each cut skips an entire subtree, so the true reduction ratio is
    /// much stronger than `1 − prune_rate`.
    pub fn prune_rate(&self) -> f64 {
        let attempted = self.runs + self.dedup_hits;
        if attempted == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / attempted as f64
        }
    }

    /// The distinct violation messages, order-free — the set differential
    /// mode compares across full and reduced explorations (reduced mode
    /// executes one representative per converged state, so per-schedule
    /// violation *counts* differ by design).
    pub fn distinct_violation_messages(&self) -> BTreeSet<&str> {
        self.violations.iter().map(|v| v.message.as_str()).collect()
    }
}

/// Shares a [`ReplayOracle`] between the engine (which consumes choices) and
/// the explorer (which reads the log afterwards).
struct SharedOracle(Rc<RefCell<ReplayOracle>>);

impl Oracle for SharedOracle {
    fn choose(&mut self, options: usize) -> usize {
        self.0.borrow_mut().choose(options)
    }

    fn choose_for(&mut self, options: usize, tag: crate::oracle::ChoiceTag) -> usize {
        self.0.borrow_mut().choose_for(options, tag)
    }
}

/// Result of exploring one subtree (or, for the serial explorer, the whole
/// tree).
struct SubtreeOutcome {
    runs: usize,
    violations: Vec<Violation>,
    exhausted: bool,
    /// Wall-clock seconds the subtree's DFS took on its worker.
    /// Observability-only — it feeds the `subtree` telemetry event and
    /// never the report.
    wall_s: f64,
}

/// Tracks engine scaffolding sizes across runs so rebuilt engines can be
/// pre-sized (queue and trace skip their grow-by-doubling phase).
#[derive(Default, Clone, Copy)]
struct Sizing {
    queue: usize,
    trace: usize,
}

impl Sizing {
    fn observe<M: Message>(&mut self, eng: &Engine<M>) {
        self.queue = self.queue.max(eng.queue_high_water());
        self.trace = self.trace.max(eng.trace().events.len());
    }
}

/// Serial DFS over the subtree of schedules whose choice paths start with
/// `prefix` (the whole tree for an empty prefix). `budget` is the shared
/// run counter; a slot index at or past `max_runs` aborts with
/// `exhausted = false`.
fn explore_subtree<M: Message>(
    build: &mut impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    check: &mut impl FnMut(&Engine<M>, &RunReport) -> Result<(), String>,
    prefix: &[usize],
    budget: &AtomicUsize,
    max_runs: usize,
) -> SubtreeOutcome {
    let started = std::time::Instant::now();
    let mut path: Vec<usize> = prefix.to_vec();
    let mut runs = 0usize;
    let mut violations = Vec::new();
    let mut sizing = Sizing::default();
    loop {
        let slot = budget.fetch_add(1, Ordering::Relaxed);
        if slot >= max_runs {
            return SubtreeOutcome {
                runs,
                violations,
                exhausted: false,
                wall_s: started.elapsed().as_secs_f64(),
            };
        }
        let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.clone())));
        let mut engine = build(Box::new(SharedOracle(oracle.clone())));
        engine.reserve_capacity(sizing.queue, sizing.trace);
        let report = engine.run();
        runs += 1;
        if let Err(message) = check(&engine, &report) {
            let taken: Vec<usize> = oracle.borrow().log.iter().map(|&(c, _)| c).collect();
            violations.push(Violation {
                path: taken,
                message,
            });
        }
        sizing.observe(&engine);
        if slot + 1 >= max_runs {
            return SubtreeOutcome {
                runs,
                violations,
                exhausted: false,
                wall_s: started.elapsed().as_secs_f64(),
            };
        }
        let next = oracle.borrow().next_path();
        match next {
            // A longer next path cannot have bumped a choice inside the
            // prefix, so it still starts with it: stay in the subtree.
            Some(p) if p.len() > prefix.len() => path = p,
            _ => {
                return SubtreeOutcome {
                    runs,
                    violations,
                    exhausted: true,
                    wall_s: started.elapsed().as_secs_f64(),
                }
            }
        }
    }
}

/// Renders one `subtree` telemetry event: which frontier slot, how many
/// runs/violations it contributed, whether it exhausted, and its
/// worker-side throughput.
fn subtree_event(index: usize, prefix_len: usize, out: &SubtreeOutcome) -> Event {
    let runs_per_sec = if out.wall_s > 0.0 {
        out.runs as f64 / out.wall_s
    } else {
        0.0
    };
    Event::new("subtree")
        .with_u64("index", index as u64)
        .with_u64("prefix_len", prefix_len as u64)
        .with_u64("runs", out.runs as u64)
        .with_u64("violations", out.violations.len() as u64)
        .with_bool("exhausted", out.exhausted)
        .with_f64("wall_s", out.wall_s)
        .with_f64("runs_per_sec", runs_per_sec)
}

/// Exhaustively explores the schedule tree of a simulation, serially.
///
/// * `build` — constructs a fresh engine wired to the given oracle; it must
///   be deterministic (same oracle behaviour ⇒ same run).
/// * `check` — inspects the completed engine and its [`RunReport`]; returns
///   `Err(description)` to record a violation for that schedule.
///
/// See [`explore_parallel`] for the multi-threaded variant; this function
/// remains the `threads = 1` full-enumeration reference both the parallel
/// and the reduced explorers are checked against.
pub fn explore<M: Message>(
    mut build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    mut check: impl FnMut(&Engine<M>, &RunReport) -> Result<(), String>,
    limits: ExploreLimits,
) -> ExploreReport {
    let budget = AtomicUsize::new(0);
    let out = explore_subtree(&mut build, &mut check, &[], &budget, limits.max_runs);
    ExploreReport {
        runs: out.runs,
        exhausted: out.exhausted,
        violations: out.violations,
        dedup_hits: 0,
        dead_branch_prunes: 0,
        resplits: 0,
        full_tree_runs: None,
    }
}

// ---------------------------------------------------------------------------
// Reduced exploration
// ---------------------------------------------------------------------------

/// Global seen-set cap: past this many distinct fingerprints the set stops
/// growing (probes keep answering for known states but fresh states are no
/// longer recorded — still sound, just less reduction). Bounds worst-case
/// memory to a few hundred MB.
const SEEN_CAP: usize = 1 << 23;

/// Sharded global fingerprint set. Workers consult their local cache first;
/// a fresh state costs one shard lock.
struct Seen {
    shards: Vec<Mutex<HashSet<u64>>>,
    count: AtomicUsize,
    full: AtomicBool,
}

impl Seen {
    fn new(shards: usize) -> Self {
        Seen {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
            count: AtomicUsize::new(0),
            full: AtomicBool::new(false),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<HashSet<u64>> {
        &self.shards[(fp as usize) % self.shards.len()]
    }

    /// Records `fp` and reports whether it was already known (globally or in
    /// the worker's local cache). At capacity it degrades to lookups only.
    fn probe_insert(&self, fp: u64, local: &mut HashSet<u64>) -> bool {
        if local.contains(&fp) {
            return true;
        }
        if self.full.load(Ordering::Relaxed) {
            return self.shard(fp).lock().expect("seen shard").contains(&fp);
        }
        local.insert(fp);
        let fresh = self.shard(fp).lock().expect("seen shard").insert(fp);
        if fresh && self.count.fetch_add(1, Ordering::Relaxed) + 1 >= SEEN_CAP {
            self.full.store(true, Ordering::Relaxed);
        }
        !fresh
    }
}

/// Shared work queue of subtree prefixes for the reduced explorer.
/// Seeded with the root prefix; grows by donation (dynamic re-splits).
struct WorkQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    /// Workers currently parked waiting for work — the cheap "does anyone
    /// need a donation" signal read on the hot path.
    idle_hint: AtomicUsize,
}

struct QueueState {
    items: Vec<Vec<usize>>,
    idle: usize,
    shutdown: bool,
}

impl WorkQueue {
    fn new(seed: Vec<Vec<usize>>) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: seed,
                idle: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            idle_hint: AtomicUsize::new(0),
        }
    }

    /// Pops a work item, parking until one arrives. Returns `None` once all
    /// `workers` are idle with an empty queue (global completion) or after
    /// [`WorkQueue::shutdown`].
    fn pop(&self, workers: usize) -> Option<Vec<usize>> {
        let mut st = self.state.lock().expect("work queue");
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(p) = st.items.pop() {
                return Some(p);
            }
            st.idle += 1;
            if st.idle == workers {
                st.shutdown = true;
                self.cv.notify_all();
                return None;
            }
            self.idle_hint.fetch_add(1, Ordering::Relaxed);
            st = self.cv.wait(st).expect("work queue");
            self.idle_hint.fetch_sub(1, Ordering::Relaxed);
            st.idle -= 1;
        }
    }

    fn push_many(&self, donated: Vec<Vec<usize>>) {
        let mut st = self.state.lock().expect("work queue");
        st.items.extend(donated);
        drop(st);
        self.cv.notify_all();
    }

    fn shutdown(&self) {
        self.state.lock().expect("work queue").shutdown = true;
        self.cv.notify_all();
    }
}

/// Per-worker tallies from the reduced explorer.
#[derive(Default)]
struct ReducedTotals {
    runs: usize,
    dedup_hits: usize,
    dead_prunes: u64,
    resplits: usize,
    violations: Vec<Violation>,
    wall_s: f64,
}

/// One reduced-mode worker: drains the work queue, DFS-ing each subtree
/// with dedup probes armed and donating sibling subtrees to idle peers.
#[allow(clippy::too_many_arguments)]
fn reduced_worker<M, B, C>(
    build: &B,
    check: &C,
    q: &WorkQueue,
    workers: usize,
    seen: &Arc<Seen>,
    budget: &AtomicUsize,
    max_runs: usize,
    budget_hit: &AtomicBool,
    prune_dead: bool,
) -> ReducedTotals
where
    M: Message,
    B: Fn(Box<dyn Oracle>) -> Engine<M>,
    C: Fn(&Engine<M>, &RunReport) -> Result<(), String>,
{
    let started = std::time::Instant::now();
    let mut totals = ReducedTotals::default();
    // States this worker has already recorded — probed lock-free before
    // the sharded global set. Shared across all this worker's runs.
    let local: Rc<RefCell<HashSet<u64>>> = Rc::new(RefCell::new(HashSet::new()));
    let mut sizing = Sizing::default();
    'items: while let Some(item) = q.pop(workers) {
        let mut prefix_len = item.len();
        let mut path = item;
        loop {
            // Reserve an executed-run slot; refunded if the run dedups.
            let slot = budget.fetch_add(1, Ordering::Relaxed);
            if slot >= max_runs {
                budget_hit.store(true, Ordering::Relaxed);
                q.shutdown();
                break 'items;
            }
            let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.clone())));
            let mut engine = build(Box::new(SharedOracle(oracle.clone())));
            if prune_dead {
                engine.set_prune_dead_sends(true);
            }
            engine.enable_fingerprints();
            {
                // Probe armed only once the run has left replayed
                // territory: states visited *while replaying* were inserted
                // by the runs that opened this branch, and pruning on them
                // would wrongly discard the branch being opened.
                let orc = oracle.clone();
                let local = local.clone();
                let seen = seen.clone();
                engine.set_fingerprint_probe(Box::new(move |fp| {
                    if !orc.borrow().replay_done() {
                        return false;
                    }
                    seen.probe_insert(fp, &mut local.borrow_mut())
                }));
            }
            engine.reserve_capacity(sizing.queue, sizing.trace);
            let report = engine.run();
            sizing.observe(&engine);
            totals.dead_prunes += engine.dead_branch_prunes();
            if engine.was_deduped() {
                budget.fetch_sub(1, Ordering::Relaxed);
                totals.dedup_hits += 1;
            } else {
                totals.runs += 1;
                if let Err(message) = check(&engine, &report) {
                    let taken: Vec<usize> = oracle.borrow().log.iter().map(|&(c, _)| c).collect();
                    totals.violations.push(Violation {
                        path: taken,
                        message,
                    });
                }
            }
            // The truncated log of a deduplicated run prunes exactly the
            // subtree below the convergence point: every schedule with this
            // log as prefix passes through the already-covered state.
            let next = oracle.borrow().next_path();
            let mut p = match next {
                Some(p) if p.len() > prefix_len => p,
                _ => break,
            };
            // Dynamic re-split: a parked peer means the queue is dry —
            // donate every unvisited sibling at the shallowest still-open
            // level of our position and deepen our own prefix past it.
            if q.idle_hint.load(Ordering::Relaxed) > 0 {
                let log = oracle.borrow().log.clone();
                let mut donated: Vec<Vec<usize>> = Vec::new();
                for i in prefix_len..p.len() {
                    let options = log[i].1;
                    if p[i] + 1 < options {
                        for c in p[i] + 1..options {
                            let mut d = p[..i].to_vec();
                            d.push(c);
                            donated.push(d);
                        }
                        prefix_len = i + 1;
                        break;
                    }
                }
                if !donated.is_empty() {
                    totals.resplits += 1;
                    q.push_many(donated);
                }
            }
            std::mem::swap(&mut path, &mut p);
        }
    }
    totals.wall_s = started.elapsed().as_secs_f64();
    totals
}

/// Reduced exploration over `threads` workers; emits `dpor` telemetry.
fn explore_reduced_with<M, B, C>(
    build: &B,
    check: &C,
    cfg: ExploreConfig,
    threads: usize,
    sink: &mut dyn TelemetrySink,
) -> ExploreReport
where
    M: Message,
    B: Fn(Box<dyn Oracle>) -> Engine<M> + Sync,
    C: Fn(&Engine<M>, &RunReport) -> Result<(), String> + Sync,
{
    let started = std::time::Instant::now();
    let workers = threads.max(1);
    let seen = Arc::new(Seen::new(if workers > 1 { 64 } else { 1 }));
    let q = WorkQueue::new(vec![Vec::new()]);
    let budget = AtomicUsize::new(0);
    let budget_hit = AtomicBool::new(false);
    let per_worker: Vec<ReducedTotals> = if workers == 1 {
        vec![reduced_worker(
            build,
            check,
            &q,
            1,
            &seen,
            &budget,
            cfg.max_runs,
            &budget_hit,
            cfg.prune_dead_sends,
        )]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let q = &q;
                    let seen = &seen;
                    let budget = &budget;
                    let budget_hit = &budget_hit;
                    scope.spawn(move |_| {
                        reduced_worker(
                            build,
                            check,
                            q,
                            workers,
                            seen,
                            budget,
                            cfg.max_runs,
                            budget_hit,
                            cfg.prune_dead_sends,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reduced explorer worker panicked"))
                .collect()
        })
        .expect("reduced explorer worker panicked")
    };

    let mut report = ExploreReport {
        runs: 0,
        exhausted: !budget_hit.load(Ordering::Relaxed),
        violations: Vec::new(),
        dedup_hits: 0,
        dead_branch_prunes: 0,
        resplits: 0,
        full_tree_runs: None,
    };
    for (i, t) in per_worker.iter().enumerate() {
        report.runs += t.runs;
        report.dedup_hits += t.dedup_hits;
        report.dead_branch_prunes += t.dead_prunes;
        report.resplits += t.resplits;
        sink.emit(
            &Event::new("dpor_worker")
                .with_u64("index", i as u64)
                .with_u64("runs", t.runs as u64)
                .with_u64("dedup_hits", t.dedup_hits as u64)
                .with_u64("resplits", t.resplits as u64)
                .with_f64("wall_s", t.wall_s),
        );
    }
    for t in per_worker {
        report.violations.extend(t.violations);
    }
    // Which worker executed a violating representative first is timing-
    // dependent; path order makes the merged report deterministic in
    // content for a fixed set of executed schedules.
    report
        .violations
        .sort_by(|a, b| a.path.cmp(&b.path).then_with(|| a.message.cmp(&b.message)));
    let wall_s = started.elapsed().as_secs_f64();
    let attempted = report.runs + report.dedup_hits;
    sink.emit(
        &Event::new("dpor")
            .with_u64("threads", workers as u64)
            .with_u64("runs", report.runs as u64)
            .with_u64("dedup_hits", report.dedup_hits as u64)
            .with_u64("dead_branch_prunes", report.dead_branch_prunes)
            .with_u64("resplits", report.resplits as u64)
            .with_u64("violations", report.violations.len() as u64)
            .with_bool("exhausted", report.exhausted)
            .with_f64("prune_rate", report.prune_rate())
            .with_f64("wall_s", wall_s)
            .with_f64(
                "sched_per_sec",
                if wall_s > 0.0 {
                    attempted as f64 / wall_s
                } else {
                    0.0
                },
            ),
    );
    report
}

/// One frontier node of the split tree: either a complete schedule shorter
/// than the split depth (explored during discovery), or the prefix of a
/// subtree handed to a worker.
enum FrontierItem {
    Leaf(Option<Violation>),
    Subtree(Vec<usize>),
}

/// Explores the schedule tree using `cfg.threads` worker threads, with the
/// strategy selected by `cfg.mode` (see the module docs).
///
/// In [`ExploreMode::Full`], identical in observable behaviour to
/// [`explore`] whenever the tree is exhausted within budget: same `runs`,
/// same `exhausted`, and the same violations in the same (serial DFS)
/// order, regardless of thread count. In [`ExploreMode::Reduced`], the
/// exhaustion verdict and the distinct violation set match full
/// enumeration; executed-run counts and representative paths don't (that is
/// the point). `build` and `check` must be thread-safe (`Sync`) because
/// workers invoke them concurrently; runs themselves stay single-threaded
/// and deterministic.
pub fn explore_parallel<M, B, C>(build: B, check: C, cfg: ExploreConfig) -> ExploreReport
where
    M: Message,
    B: Fn(Box<dyn Oracle>) -> Engine<M> + Sync,
    C: Fn(&Engine<M>, &RunReport) -> Result<(), String> + Sync,
{
    explore_parallel_with(build, check, cfg, &mut NullSink)
}

/// [`explore_parallel`] with a telemetry sink attached.
///
/// Full mode emits one `frontier` event after the discovery phase (split
/// depth, frontier size, how many nodes were complete leaves vs subtrees,
/// and whether discovery stayed within budget) and one `subtree` event per
/// subtree work item — runs, violations, exhaustion and worker-side
/// throughput — **in frontier (= serial DFS) order** after the
/// deterministic merge, whatever thread interleaving executed them.
/// Reduced mode emits one `dpor_worker` event per worker (in worker-index
/// order) and a closing `dpor` summary (runs, dedup hits, dead-branch
/// prunes, re-splits, prune rate). In both modes the sink is only touched
/// from the calling thread, and only wall-clock fields depend on the
/// machine: the report is the same object [`explore_parallel`] returns.
pub fn explore_parallel_with<M, B, C>(
    build: B,
    check: C,
    cfg: ExploreConfig,
    sink: &mut dyn TelemetrySink,
) -> ExploreReport
where
    M: Message,
    B: Fn(Box<dyn Oracle>) -> Engine<M> + Sync,
    C: Fn(&Engine<M>, &RunReport) -> Result<(), String> + Sync,
{
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    if cfg.mode == ExploreMode::Reduced {
        return explore_reduced_with(&build, &check, cfg, threads, sink);
    }
    let budget = AtomicUsize::new(0);
    if threads <= 1 {
        let mut b = &build;
        let mut c = &check;
        let out = explore_subtree(&mut b, &mut c, &[], &budget, cfg.max_runs);
        // Serial fallback: the whole tree is one subtree rooted at the
        // empty prefix; the frontier event records the degenerate split.
        sink.emit(
            &Event::new("frontier")
                .with_u64("split_depth", 0)
                .with_u64("frontier", 1)
                .with_u64("leaves", 0)
                .with_u64("subtrees", 1)
                .with_bool("discovery_complete", true),
        );
        sink.emit(&subtree_event(0, 0, &out));
        return ExploreReport {
            runs: out.runs,
            exhausted: out.exhausted,
            violations: out.violations,
            dedup_hits: 0,
            dead_branch_prunes: 0,
            resplits: 0,
            full_tree_runs: None,
        };
    }

    // Phase 1 — serial frontier discovery: enumerate the tree truncated at
    // `split_depth`. Each iteration executes one run (the leftmost leaf of
    // the frontier node); complete runs at depth ≤ split_depth are leaves
    // and count immediately, deeper ones yield a subtree work item whose
    // leftmost leaf the owning worker re-runs (the only duplicated work).
    let mut items: Vec<FrontierItem> = Vec::new();
    let mut discovery_complete = true;
    let mut sizing = Sizing::default();
    let mut path: Vec<usize> = Vec::new();
    loop {
        if items.len() >= cfg.max_runs {
            // Every item costs ≥ 1 run: the budget is already committed.
            discovery_complete = false;
            break;
        }
        let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.clone())));
        let mut engine = build(Box::new(SharedOracle(oracle.clone())));
        engine.reserve_capacity(sizing.queue, sizing.trace);
        let report = engine.run();
        sizing.observe(&engine);
        let taken: Vec<usize> = oracle.borrow().log.iter().map(|&(c, _)| c).collect();
        if taken.len() <= cfg.split_depth {
            let slot = budget.fetch_add(1, Ordering::Relaxed);
            if slot >= cfg.max_runs {
                discovery_complete = false;
                break;
            }
            let violation = check(&engine, &report).err().map(|message| Violation {
                path: taken.clone(),
                message,
            });
            items.push(FrontierItem::Leaf(violation));
            if slot + 1 >= cfg.max_runs {
                discovery_complete = false;
                break;
            }
        } else {
            items.push(FrontierItem::Subtree(taken[..cfg.split_depth].to_vec()));
        }
        let next = oracle.borrow().next_path_bounded(cfg.split_depth);
        match next {
            Some(p) => path = p,
            None => break,
        }
    }

    // Phase 2 — workers drain the subtree items via a work-stealing cursor,
    // each writing into its own buffer (no shared locks on the hot path).
    let subtrees: Vec<(usize, &[usize])> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            FrontierItem::Subtree(p) => Some((i, p.as_slice())),
            FrontierItem::Leaf(_) => None,
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(subtrees.len().max(1));
    let gathered: Vec<(usize, SubtreeOutcome)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local: Vec<(usize, SubtreeOutcome)> = Vec::new();
                    let mut b = &build;
                    let mut c = &check;
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= subtrees.len() {
                            break;
                        }
                        let (idx, prefix) = subtrees[k];
                        local.push((
                            idx,
                            explore_subtree(&mut b, &mut c, prefix, &budget, cfg.max_runs),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("explorer worker panicked"))
            .collect()
    })
    .expect("explorer worker panicked");

    // Phase 3 — deterministic merge in frontier (= serial DFS) order.
    // Telemetry piggybacks on the same order: the frontier summary first,
    // then one `subtree` event per work item as it merges.
    let mut per_item: Vec<Option<SubtreeOutcome>> = items.iter().map(|_| None).collect();
    for (idx, out) in gathered {
        per_item[idx] = Some(out);
    }
    sink.emit(
        &Event::new("frontier")
            .with_u64("split_depth", cfg.split_depth as u64)
            .with_u64("frontier", items.len() as u64)
            .with_u64("leaves", (items.len() - subtrees.len()) as u64)
            .with_u64("subtrees", subtrees.len() as u64)
            .with_bool("discovery_complete", discovery_complete),
    );
    let mut runs = 0usize;
    let mut exhausted = discovery_complete;
    let mut violations = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        match item {
            FrontierItem::Leaf(violation) => {
                runs += 1;
                violations.extend(violation);
            }
            FrontierItem::Subtree(prefix) => {
                let out = per_item[i].take().expect("every subtree visited");
                sink.emit(&subtree_event(i, prefix.len(), &out));
                runs += out.runs;
                violations.extend(out.violations);
                exhausted &= out.exhausted;
            }
        }
    }
    ExploreReport {
        runs,
        exhausted,
        violations,
        dedup_hits: 0,
        dead_branch_prunes: 0,
        resplits: 0,
        full_tree_runs: None,
    }
}

/// Result of [`explore_differential`]: full enumeration vs reduced
/// exploration of the same instance, with the equivalence verdict.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// The full-enumeration reference report.
    pub full: ExploreReport,
    /// The reduced report, with
    /// [`full_tree_runs`](ExploreReport::full_tree_runs) filled in (so
    /// [`ExploreReport::reduction_ratio`] is available).
    pub reduced: ExploreReport,
    /// `None` when the modes agree; otherwise a description of the first
    /// discrepancy (exhaustion verdict, overall verdict, or distinct
    /// violation sets).
    pub mismatch: Option<String>,
}

impl DifferentialReport {
    /// True when the reduced exploration matched the full reference.
    pub fn agree(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// Runs full enumeration and reduced exploration back to back and compares
/// them: when the full reference exhausts, the reduced pass must too (its
/// executed leaves are a subset), with the same overall pass/fail and the
/// same *distinct violation set* (reduced mode executes one representative
/// per converged state, so per-schedule counts differ by design). A
/// budget-limited full reference makes the reports incomparable and never
/// a mismatch. This is the correctness gate for the reduction — CI runs it
/// on every instance the full explorer can exhaust.
pub fn explore_differential<M, B, C>(
    build: B,
    check: C,
    cfg: ExploreConfig,
    sink: &mut dyn TelemetrySink,
) -> DifferentialReport
where
    M: Message,
    B: Fn(Box<dyn Oracle>) -> Engine<M> + Sync,
    C: Fn(&Engine<M>, &RunReport) -> Result<(), String> + Sync,
{
    let full = explore_parallel_with(
        &build,
        &check,
        ExploreConfig {
            mode: ExploreMode::Full,
            ..cfg
        },
        sink,
    );
    let mut reduced = explore_parallel_with(
        &build,
        &check,
        ExploreConfig {
            mode: ExploreMode::Reduced,
            ..cfg
        },
        sink,
    );
    if full.exhausted {
        reduced.full_tree_runs = Some(full.runs);
    }
    let mismatch = if !full.exhausted {
        // The reference is incomplete: the visited schedule sets are
        // incomparable. (Reduced may legitimately exhaust a tree full
        // enumeration cannot within the same executed-run budget — that is
        // the reduction working, not a discrepancy.)
        None
    } else if !reduced.exhausted {
        // Reduced executes a subset of the full leaves, so with the same
        // budget it must exhaust whenever full does.
        Some(format!(
            "full exhausted in {} runs but reduced hit the budget at {}",
            full.runs, reduced.runs
        ))
    } else if full.all_ok() != reduced.all_ok() {
        Some(format!(
            "verdict differs: full all_ok={} reduced all_ok={}",
            full.all_ok(),
            reduced.all_ok()
        ))
    } else if full.distinct_violation_messages() != reduced.distinct_violation_messages() {
        Some(format!(
            "distinct violation sets differ: full={:?} reduced={:?}",
            full.distinct_violation_messages(),
            reduced.distinct_violation_messages()
        ))
    } else {
        None
    };
    DifferentialReport {
        full,
        reduced,
        mismatch,
    }
}

/// Re-runs a single schedule (e.g. a violating path from a previous
/// exploration) and returns the engine for inspection.
///
/// Paths recorded under [`ExploreConfig::prune_dead_sends`] omit the elided
/// choices — replay those with [`replay_pruned`] so the choice indices line
/// up.
pub fn replay<M: Message>(
    build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    path: &[usize],
) -> (Engine<M>, RunReport) {
    replay_inner(build, path, false)
}

/// [`replay`] with [`EngineConfig::prune_dead_sends`](crate::engine::EngineConfig::prune_dead_sends)
/// enabled — required for paths recorded by a reduced exploration that had
/// [`ExploreConfig::prune_dead_sends`] on.
pub fn replay_pruned<M: Message>(
    build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    path: &[usize],
) -> (Engine<M>, RunReport) {
    replay_inner(build, path, true)
}

fn replay_inner<M: Message>(
    mut build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    path: &[usize],
    prune_dead: bool,
) -> (Engine<M>, RunReport) {
    let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.to_vec())));
    let mut engine = build(Box::new(SharedOracle(oracle)));
    if prune_dead {
        engine.set_prune_dead_sends(true);
    }
    let report = engine.run();
    (engine, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftClock;
    use crate::engine::EngineConfig;
    use crate::impl_process_boilerplate;
    use crate::net::SyncNet;
    use crate::process::{Ctx, Pid, Process, TimerId};
    use crate::time::SimDuration;

    /// Two racers send to a judge; the judge records who arrived first.
    #[derive(Debug, Clone, Default)]
    struct Judge {
        first: Option<Pid>,
    }
    impl Process<u32> for Judge {
        fn on_start(&mut self, _ctx: &mut Ctx<u32>) {}
        fn on_message(&mut self, from: Pid, _m: u32, ctx: &mut Ctx<u32>) {
            if self.first.is_none() {
                self.first = Some(from);
                ctx.mark("winner", from as i64);
            }
        }
        fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    #[derive(Debug, Clone)]
    struct Racer {
        judge: Pid,
    }
    impl Process<u32> for Racer {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            ctx.send(self.judge, 1);
        }
        fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
        fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    fn build_race(oracle: Box<dyn Oracle>) -> Engine<u32> {
        let mut eng = Engine::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(100), 2)), // 2 buckets
            oracle,
            EngineConfig::default(),
        );
        eng.add_process(Box::new(Judge::default()), DriftClock::perfect()); // pid 0
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect()); // pid 1
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect()); // pid 2
        eng
    }

    /// Like `build_race`, but the 1-tick delay span quantised into 4
    /// buckets makes buckets 0–2 collide on the same tick — converging
    /// schedules the reduced explorer must deduplicate.
    fn build_race_colliding(oracle: Box<dyn Oracle>) -> Engine<u32> {
        let mut eng = Engine::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(1), 4)),
            oracle,
            EngineConfig::default(),
        );
        eng.add_process(Box::new(Judge::default()), DriftClock::perfect());
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect());
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect());
        eng
    }

    fn racer2_wins_check(eng: &Engine<u32>, _r: &RunReport) -> Result<(), String> {
        let judge = eng.process_as::<Judge>(0).unwrap();
        if judge.first == Some(2) {
            Err("racer 2 won".to_owned())
        } else {
            Ok(())
        }
    }

    #[test]
    fn explorer_finds_both_race_outcomes() {
        let mut winners = std::collections::HashSet::new();
        let report = explore(
            build_race,
            |eng, _| {
                let judge = eng.process_as::<Judge>(0).unwrap();
                winners.insert(judge.first);
                Ok(())
            },
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert!(report.all_ok());
        // 2 racers × 2 delay buckets → 4 schedules.
        assert_eq!(report.runs, 4);
        assert!(winners.contains(&Some(1)));
        assert!(winners.contains(&Some(2)));
    }

    #[test]
    fn explorer_reports_violations_with_replayable_paths() {
        let report = explore(build_race, racer2_wins_check, ExploreLimits::default());
        assert!(report.exhausted);
        assert!(!report.all_ok());
        assert!(!report.violations.is_empty());
        // Every reported path replays to the same violation.
        for v in &report.violations {
            let (eng, _) = replay(build_race, &v.path);
            let judge = eng.process_as::<Judge>(0).unwrap();
            assert_eq!(judge.first, Some(2), "replay must reproduce the violation");
        }
    }

    #[test]
    fn run_budget_respected() {
        let report = explore(build_race, |_, _| Ok(()), ExploreLimits { max_runs: 2 });
        assert_eq!(report.runs, 2);
        assert!(!report.exhausted);
    }

    /// Serial vs parallel equivalence on the race example, across thread
    /// counts and split depths (including the degenerate 0 and a depth far
    /// beyond the tree).
    #[test]
    fn parallel_matches_serial_on_race() {
        let serial = explore(build_race, racer2_wins_check, ExploreLimits::default());
        assert!(serial.exhausted);
        for threads in [2usize, 4, 8] {
            for split_depth in [0usize, 1, 2, 16] {
                let par = explore_parallel(
                    build_race,
                    racer2_wins_check,
                    ExploreConfig {
                        threads,
                        split_depth,
                        ..Default::default()
                    },
                );
                assert_eq!(par.runs, serial.runs, "t={threads} d={split_depth}");
                assert_eq!(par.exhausted, serial.exhausted);
                let paths = |r: &ExploreReport| {
                    r.violations
                        .iter()
                        .map(|v| (v.path.clone(), v.message.clone()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    paths(&par),
                    paths(&serial),
                    "violations in serial DFS order, t={threads} d={split_depth}"
                );
            }
        }
    }

    /// The instrumented explorer returns the same report as the plain one
    /// and emits `frontier` + `subtree` events in frontier order, with
    /// run counts that add up to the report's.
    #[test]
    fn instrumented_explorer_emits_frontier_ordered_events() {
        let mut ring = telemetry::RingSink::new(64);
        let par = explore_parallel_with(
            build_race,
            |_, _| Ok(()),
            ExploreConfig {
                threads: 4,
                split_depth: 1,
                ..Default::default()
            },
            &mut ring,
        );
        assert!(par.exhausted);
        assert_eq!(par.runs, 4);
        let events: Vec<_> = ring.events().collect();
        assert_eq!(events[0].kind(), "frontier");
        assert_eq!(events[0].u64_field("split_depth"), Some(1));
        assert_eq!(events[0].bool_field("discovery_complete"), Some(true));
        let subtrees: Vec<_> = events.iter().filter(|e| e.kind() == "subtree").collect();
        assert_eq!(events[0].u64_field("subtrees"), Some(subtrees.len() as u64));
        let leaves = events[0].u64_field("leaves").unwrap();
        let indices: Vec<u64> = subtrees
            .iter()
            .map(|e| e.u64_field("index").unwrap())
            .collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "subtree events in frontier order");
        let subtree_runs: u64 = subtrees.iter().map(|e| e.u64_field("runs").unwrap()).sum();
        assert_eq!(subtree_runs + leaves, par.runs as u64);
    }

    #[test]
    fn parallel_respects_run_budget() {
        let par = explore_parallel(
            build_race,
            |_, _| Ok(()),
            ExploreConfig {
                max_runs: 2,
                threads: 4,
                split_depth: 1,
                ..Default::default()
            },
        );
        assert_eq!(par.runs, 2);
        assert!(!par.exhausted);
    }

    #[test]
    fn parallel_zero_threads_uses_all_cores() {
        let par = explore_parallel(build_race, |_, _| Ok(()), ExploreConfig::with_threads(0));
        assert!(par.exhausted);
        assert_eq!(par.runs, 4);
    }

    #[test]
    fn deterministic_system_explores_single_path() {
        // With 1 bucket there is no choice anywhere: exactly one schedule.
        let report = explore(
            |oracle| {
                let mut eng = Engine::new(
                    Box::new(SyncNet::worst_case(SimDuration::from_ticks(10))),
                    oracle,
                    EngineConfig::default(),
                );
                eng.add_process(Box::new(Judge::default()), DriftClock::perfect());
                eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect());
                eng
            },
            |_, _| Ok(()),
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert_eq!(report.runs, 1);
    }

    // -- reduced exploration ------------------------------------------------

    #[test]
    fn reduced_deduplicates_colliding_schedules() {
        // 2 racers × 4 buckets = 16 full schedules, but buckets 0–2 collide
        // on the same delivery tick: only 2 distinct delays per racer → 4
        // delay pairs, and the time-abstract fingerprint identifies every
        // pair with the same *winner* (delivery order is all the judge
        // observes). 2 distinct behaviours; the reduced explorer must
        // execute exactly those and cut the rest.
        let full = explore(
            build_race_colliding,
            |_, _| Ok(()),
            ExploreLimits::default(),
        );
        assert!(full.exhausted);
        assert_eq!(full.runs, 16);
        let winners = std::sync::Mutex::new(std::collections::HashSet::new());
        let reduced = explore_parallel(
            build_race_colliding,
            |eng, _| {
                let judge = eng.process_as::<Judge>(0).unwrap();
                winners.lock().unwrap().insert(judge.first);
                Ok(())
            },
            ExploreConfig {
                mode: ExploreMode::Reduced,
                ..Default::default()
            },
        );
        assert!(reduced.exhausted);
        assert!(reduced.all_ok());
        assert_eq!(reduced.runs, 2, "one representative per distinct behaviour");
        assert_eq!(reduced.dedup_hits, 8, "pruned subtrees, counted at the cut");
        let winners = winners.lock().unwrap();
        assert!(winners.contains(&Some(1)), "racer 1 outcome preserved");
        assert!(winners.contains(&Some(2)), "racer 2 outcome preserved");
    }

    #[test]
    fn reduced_finds_the_seeded_violation() {
        // Regression guard: the known "racer 2 wins" violation must survive
        // reduction, serial and parallel, and its path must replay.
        for threads in [1usize, 4] {
            let reduced = explore_parallel(
                build_race_colliding,
                racer2_wins_check,
                ExploreConfig {
                    mode: ExploreMode::Reduced,
                    prune_dead_sends: true,
                    threads,
                    ..Default::default()
                },
            );
            assert!(reduced.exhausted, "t={threads}");
            assert!(!reduced.all_ok(), "t={threads}");
            assert_eq!(
                reduced.distinct_violation_messages(),
                ["racer 2 won"].into_iter().collect(),
                "t={threads}"
            );
            for v in &reduced.violations {
                let (eng, _) = replay_pruned(build_race_colliding, &v.path);
                let judge = eng.process_as::<Judge>(0).unwrap();
                assert_eq!(judge.first, Some(2), "t={threads}: path must replay");
            }
        }
    }

    #[test]
    fn reduced_matches_full_across_threads() {
        for build in [build_race, build_race_colliding] {
            let full = explore(build, racer2_wins_check, ExploreLimits::default());
            assert!(full.exhausted);
            for threads in [1usize, 2, 4] {
                let reduced = explore_parallel(
                    build,
                    racer2_wins_check,
                    ExploreConfig {
                        mode: ExploreMode::Reduced,
                        threads,
                        ..Default::default()
                    },
                );
                assert_eq!(reduced.exhausted, full.exhausted, "t={threads}");
                assert_eq!(reduced.all_ok(), full.all_ok(), "t={threads}");
                assert_eq!(
                    reduced.distinct_violation_messages(),
                    full.distinct_violation_messages(),
                    "t={threads}"
                );
                assert!(reduced.runs <= full.runs, "t={threads}");
            }
        }
    }

    #[test]
    fn reduced_respects_run_budget_counting_executed_only() {
        let reduced = explore_parallel(
            build_race_colliding,
            |_, _| Ok(()),
            ExploreConfig {
                max_runs: 2,
                mode: ExploreMode::Reduced,
                ..Default::default()
            },
        );
        assert!(!reduced.exhausted);
        assert_eq!(reduced.runs, 2, "budget counts executed schedules");
    }

    #[test]
    fn differential_agrees_and_reports_reduction() {
        let mut ring = telemetry::RingSink::new(256);
        let diff = explore_differential(
            build_race_colliding,
            racer2_wins_check,
            ExploreConfig::default(),
            &mut ring,
        );
        assert!(diff.agree(), "{:?}", diff.mismatch);
        assert!(diff.full.exhausted && diff.reduced.exhausted);
        assert_eq!(diff.reduced.full_tree_runs, Some(16));
        let ratio = diff.reduced.reduction_ratio().unwrap();
        assert!(ratio <= 0.25 + 1e-9, "4/16 executed, got {ratio}");
        assert!(diff.reduced.prune_rate() > 0.0);
        // The reduced pass emitted dpor telemetry.
        let kinds: Vec<_> = ring.events().map(|e| e.kind().to_owned()).collect();
        assert!(kinds.iter().any(|k| k == "dpor"), "{kinds:?}");
        assert!(kinds.iter().any(|k| k == "dpor_worker"), "{kinds:?}");
    }

    #[test]
    fn reduced_with_dead_send_elision_prunes_choices() {
        // A judge that halts after the first arrival: the second racer's
        // delivery is dead, so its delay choice is elided under
        // prune_dead_sends and the tree shrinks further.
        #[derive(Debug, Clone, Default)]
        struct HaltingJudge {
            first: Option<Pid>,
        }
        impl Process<u32> for HaltingJudge {
            fn on_start(&mut self, _ctx: &mut Ctx<u32>) {}
            fn on_message(&mut self, from: Pid, _m: u32, ctx: &mut Ctx<u32>) {
                if self.first.is_none() {
                    self.first = Some(from);
                    ctx.mark("winner", from as i64);
                    ctx.halt();
                }
            }
            fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
            impl_process_boilerplate!(u32);
        }
        // Racers send only after a timer, so the judge's halt can precede
        // the *send* of the loser's message on some schedules.
        #[derive(Debug, Clone)]
        struct TimedRacer {
            judge: Pid,
            delay: u64,
        }
        impl Process<u32> for TimedRacer {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.set_timer_after(0, SimDuration::from_ticks(self.delay));
            }
            fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
            fn on_timer(&mut self, _i: TimerId, ctx: &mut Ctx<u32>) {
                ctx.send(self.judge, 1);
            }
            impl_process_boilerplate!(u32);
        }
        let build = |oracle: Box<dyn Oracle>| {
            let mut eng = Engine::new(
                Box::new(SyncNet::new(SimDuration::from_ticks(100), 2)),
                oracle,
                EngineConfig::default(),
            );
            eng.add_process(Box::new(HaltingJudge::default()), DriftClock::perfect());
            eng.add_process(
                Box::new(TimedRacer { judge: 0, delay: 1 }),
                DriftClock::perfect(),
            );
            eng.add_process(
                Box::new(TimedRacer {
                    judge: 0,
                    delay: 500,
                }),
                DriftClock::perfect(),
            );
            eng
        };
        let full = explore(build, |_, _| Ok(()), ExploreLimits::default());
        assert!(full.exhausted);
        let reduced = explore_parallel(
            build,
            |_, _| Ok(()),
            ExploreConfig {
                mode: ExploreMode::Reduced,
                prune_dead_sends: true,
                ..Default::default()
            },
        );
        assert!(reduced.exhausted);
        assert!(
            reduced.dead_branch_prunes > 0,
            "the late racer's dead delivery must be elided"
        );
        assert!(reduced.runs < full.runs);
    }
}
