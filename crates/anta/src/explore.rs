//! Exhaustive schedule exploration (systematic concurrency testing).
//!
//! For small protocol instances the space of scheduler choices — which
//! delay bucket each message takes, how long each grey state computes — is
//! finite once quantised. This module enumerates *every* path of that choice
//! tree (depth-first, lexicographic) and checks a safety predicate on each
//! complete run. It is the executable counterpart of the paper's "for every
//! execution" quantifier over the safety clauses ES and CS1–CS3, applied to
//! bounded instances, and is used by experiment E4 to cross-check the
//! Figure 2 automata against the theorems on all schedules of small chains.
//!
//! The mechanism: the engine draws every nondeterministic choice from an
//! [`Oracle`]; a [`ReplayOracle`] replays a prescribed prefix and records the
//! branching degree at each step; [`explore`] re-runs the simulation with
//! successive prefixes until the whole tree is covered (or a run budget is
//! hit). Because runs are deterministic given the oracle, path enumeration
//! is exactly schedule enumeration — no state snapshotting is needed.
//!
//! ## Parallel exploration
//!
//! Schedules are independent runs, so the tree is embarrassingly parallel
//! once partitioned. [`explore_parallel`] first enumerates the choice tree
//! down to a configurable *split depth* (each frontier node discovered with
//! one run, its leftmost leaf), then farms the resulting disjoint subtree
//! prefixes to scoped worker threads over a work-stealing cursor — the same
//! no-unsafe pattern as the experiment sweeps. Every worker runs the plain
//! serial DFS restricted to its prefix, so when the tree is exhausted the
//! result is **bit-identical** to the serial explorer: same run count, same
//! violations, merged back in lexicographic (serial DFS) order. When the
//! run budget intervenes, the run *count* still matches the serial explorer
//! but which schedules got visited may differ between thread counts.

use crate::engine::{Engine, RunReport};
use crate::oracle::{Oracle, ReplayOracle};
use crate::process::Message;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use telemetry::{Event, NullSink, TelemetrySink};

/// Budget for an exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum number of complete runs (tree leaves) to execute.
    pub max_runs: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_runs: 1_000_000,
        }
    }
}

/// Configuration for [`explore_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum number of complete runs (tree leaves) to execute, across
    /// all threads.
    pub max_runs: usize,
    /// Worker threads. `0` ⇒ all available cores; `1` ⇒ the serial
    /// explorer, unchanged.
    pub threads: usize,
    /// Choice-tree depth at which the tree is split into per-worker
    /// subtrees. Small depths give few, large subtrees (poor balance);
    /// large depths make the serial discovery phase enumerate more
    /// frontier nodes (one run each). With `b`-way branching expect about
    /// `b^split_depth` subtrees; the default suits 2-bucket instances.
    pub split_depth: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_runs: ExploreLimits::default().max_runs,
            threads: 1,
            split_depth: 4,
        }
    }
}

impl ExploreConfig {
    /// Default limits with the given worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExploreConfig {
            threads,
            ..Self::default()
        }
    }
}

/// A safety violation found on one schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The oracle choice path reproducing the failing schedule.
    pub path: Vec<usize>,
    /// Checker-provided description.
    pub message: String,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Complete runs executed.
    pub runs: usize,
    /// True when the entire choice tree was covered within budget.
    pub exhausted: bool,
    /// All violations found (one per failing schedule).
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// True when every explored schedule satisfied the checker.
    pub fn all_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Shares a [`ReplayOracle`] between the engine (which consumes choices) and
/// the explorer (which reads the log afterwards).
struct SharedOracle(Rc<RefCell<ReplayOracle>>);

impl Oracle for SharedOracle {
    fn choose(&mut self, options: usize) -> usize {
        self.0.borrow_mut().choose(options)
    }
}

/// Result of exploring one subtree (or, for the serial explorer, the whole
/// tree).
struct SubtreeOutcome {
    runs: usize,
    violations: Vec<Violation>,
    exhausted: bool,
    /// Wall-clock seconds the subtree's DFS took on its worker.
    /// Observability-only — it feeds the `subtree` telemetry event and
    /// never the report.
    wall_s: f64,
}

/// Tracks engine scaffolding sizes across runs so rebuilt engines can be
/// pre-sized (queue and trace skip their grow-by-doubling phase).
#[derive(Default, Clone, Copy)]
struct Sizing {
    queue: usize,
    trace: usize,
}

impl Sizing {
    fn observe<M: Message>(&mut self, eng: &Engine<M>) {
        self.queue = self.queue.max(eng.queue_high_water());
        self.trace = self.trace.max(eng.trace().events.len());
    }
}

/// Serial DFS over the subtree of schedules whose choice paths start with
/// `prefix` (the whole tree for an empty prefix). `budget` is the shared
/// run counter; a slot index at or past `max_runs` aborts with
/// `exhausted = false`.
fn explore_subtree<M: Message>(
    build: &mut impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    check: &mut impl FnMut(&Engine<M>, &RunReport) -> Result<(), String>,
    prefix: &[usize],
    budget: &AtomicUsize,
    max_runs: usize,
) -> SubtreeOutcome {
    let started = std::time::Instant::now();
    let mut path: Vec<usize> = prefix.to_vec();
    let mut runs = 0usize;
    let mut violations = Vec::new();
    let mut sizing = Sizing::default();
    loop {
        let slot = budget.fetch_add(1, Ordering::Relaxed);
        if slot >= max_runs {
            return SubtreeOutcome {
                runs,
                violations,
                exhausted: false,
                wall_s: started.elapsed().as_secs_f64(),
            };
        }
        let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.clone())));
        let mut engine = build(Box::new(SharedOracle(oracle.clone())));
        engine.reserve_capacity(sizing.queue, sizing.trace);
        let report = engine.run();
        runs += 1;
        if let Err(message) = check(&engine, &report) {
            let taken: Vec<usize> = oracle.borrow().log.iter().map(|&(c, _)| c).collect();
            violations.push(Violation {
                path: taken,
                message,
            });
        }
        sizing.observe(&engine);
        if slot + 1 >= max_runs {
            return SubtreeOutcome {
                runs,
                violations,
                exhausted: false,
                wall_s: started.elapsed().as_secs_f64(),
            };
        }
        let next = oracle.borrow().next_path();
        match next {
            // A longer next path cannot have bumped a choice inside the
            // prefix, so it still starts with it: stay in the subtree.
            Some(p) if p.len() > prefix.len() => path = p,
            _ => {
                return SubtreeOutcome {
                    runs,
                    violations,
                    exhausted: true,
                    wall_s: started.elapsed().as_secs_f64(),
                }
            }
        }
    }
}

/// Renders one `subtree` telemetry event: which frontier slot, how many
/// runs/violations it contributed, whether it exhausted, and its
/// worker-side throughput.
fn subtree_event(index: usize, prefix_len: usize, out: &SubtreeOutcome) -> Event {
    let runs_per_sec = if out.wall_s > 0.0 {
        out.runs as f64 / out.wall_s
    } else {
        0.0
    };
    Event::new("subtree")
        .with_u64("index", index as u64)
        .with_u64("prefix_len", prefix_len as u64)
        .with_u64("runs", out.runs as u64)
        .with_u64("violations", out.violations.len() as u64)
        .with_bool("exhausted", out.exhausted)
        .with_f64("wall_s", out.wall_s)
        .with_f64("runs_per_sec", runs_per_sec)
}

/// Exhaustively explores the schedule tree of a simulation, serially.
///
/// * `build` — constructs a fresh engine wired to the given oracle; it must
///   be deterministic (same oracle behaviour ⇒ same run).
/// * `check` — inspects the completed engine and its [`RunReport`]; returns
///   `Err(description)` to record a violation for that schedule.
///
/// See [`explore_parallel`] for the multi-threaded variant; this function
/// remains the `threads = 1` reference it is checked against.
pub fn explore<M: Message>(
    mut build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    mut check: impl FnMut(&Engine<M>, &RunReport) -> Result<(), String>,
    limits: ExploreLimits,
) -> ExploreReport {
    let budget = AtomicUsize::new(0);
    let out = explore_subtree(&mut build, &mut check, &[], &budget, limits.max_runs);
    ExploreReport {
        runs: out.runs,
        exhausted: out.exhausted,
        violations: out.violations,
    }
}

/// One frontier node of the split tree: either a complete schedule shorter
/// than the split depth (explored during discovery), or the prefix of a
/// subtree handed to a worker.
enum FrontierItem {
    Leaf(Option<Violation>),
    Subtree(Vec<usize>),
}

/// Exhaustively explores the schedule tree using `cfg.threads` worker
/// threads (see the module docs for the partitioning scheme).
///
/// Identical in observable behaviour to [`explore`] whenever the tree is
/// exhausted within budget: same `runs`, same `exhausted`, and the same
/// violations in the same (serial DFS) order, regardless of thread count.
/// `build` and `check` must be thread-safe (`Sync`) because workers invoke
/// them concurrently; runs themselves stay single-threaded and
/// deterministic.
pub fn explore_parallel<M, B, C>(build: B, check: C, cfg: ExploreConfig) -> ExploreReport
where
    M: Message,
    B: Fn(Box<dyn Oracle>) -> Engine<M> + Sync,
    C: Fn(&Engine<M>, &RunReport) -> Result<(), String> + Sync,
{
    explore_parallel_with(build, check, cfg, &mut NullSink)
}

/// [`explore_parallel`] with a telemetry sink attached.
///
/// Emits one `frontier` event after the discovery phase (split depth,
/// frontier size, how many nodes were complete leaves vs subtrees, and
/// whether discovery stayed within budget) and one `subtree` event per
/// subtree work item — runs, violations, exhaustion and worker-side
/// throughput — **in frontier (= serial DFS) order** after the
/// deterministic merge, whatever thread interleaving executed them. The
/// sink is only touched from the calling thread, and only wall-clock
/// fields depend on the machine: the report is the same object
/// [`explore_parallel`] returns.
pub fn explore_parallel_with<M, B, C>(
    build: B,
    check: C,
    cfg: ExploreConfig,
    sink: &mut dyn TelemetrySink,
) -> ExploreReport
where
    M: Message,
    B: Fn(Box<dyn Oracle>) -> Engine<M> + Sync,
    C: Fn(&Engine<M>, &RunReport) -> Result<(), String> + Sync,
{
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    let budget = AtomicUsize::new(0);
    if threads <= 1 {
        let mut b = &build;
        let mut c = &check;
        let out = explore_subtree(&mut b, &mut c, &[], &budget, cfg.max_runs);
        // Serial fallback: the whole tree is one subtree rooted at the
        // empty prefix; the frontier event records the degenerate split.
        sink.emit(
            &Event::new("frontier")
                .with_u64("split_depth", 0)
                .with_u64("frontier", 1)
                .with_u64("leaves", 0)
                .with_u64("subtrees", 1)
                .with_bool("discovery_complete", true),
        );
        sink.emit(&subtree_event(0, 0, &out));
        return ExploreReport {
            runs: out.runs,
            exhausted: out.exhausted,
            violations: out.violations,
        };
    }

    // Phase 1 — serial frontier discovery: enumerate the tree truncated at
    // `split_depth`. Each iteration executes one run (the leftmost leaf of
    // the frontier node); complete runs at depth ≤ split_depth are leaves
    // and count immediately, deeper ones yield a subtree work item whose
    // leftmost leaf the owning worker re-runs (the only duplicated work).
    let mut items: Vec<FrontierItem> = Vec::new();
    let mut discovery_complete = true;
    let mut sizing = Sizing::default();
    let mut path: Vec<usize> = Vec::new();
    loop {
        if items.len() >= cfg.max_runs {
            // Every item costs ≥ 1 run: the budget is already committed.
            discovery_complete = false;
            break;
        }
        let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.clone())));
        let mut engine = build(Box::new(SharedOracle(oracle.clone())));
        engine.reserve_capacity(sizing.queue, sizing.trace);
        let report = engine.run();
        sizing.observe(&engine);
        let taken: Vec<usize> = oracle.borrow().log.iter().map(|&(c, _)| c).collect();
        if taken.len() <= cfg.split_depth {
            let slot = budget.fetch_add(1, Ordering::Relaxed);
            if slot >= cfg.max_runs {
                discovery_complete = false;
                break;
            }
            let violation = check(&engine, &report).err().map(|message| Violation {
                path: taken.clone(),
                message,
            });
            items.push(FrontierItem::Leaf(violation));
            if slot + 1 >= cfg.max_runs {
                discovery_complete = false;
                break;
            }
        } else {
            items.push(FrontierItem::Subtree(taken[..cfg.split_depth].to_vec()));
        }
        let next = oracle.borrow().next_path_bounded(cfg.split_depth);
        match next {
            Some(p) => path = p,
            None => break,
        }
    }

    // Phase 2 — workers drain the subtree items via a work-stealing cursor,
    // each writing into its own buffer (no shared locks on the hot path).
    let subtrees: Vec<(usize, &[usize])> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            FrontierItem::Subtree(p) => Some((i, p.as_slice())),
            FrontierItem::Leaf(_) => None,
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(subtrees.len().max(1));
    let gathered: Vec<(usize, SubtreeOutcome)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local: Vec<(usize, SubtreeOutcome)> = Vec::new();
                    let mut b = &build;
                    let mut c = &check;
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= subtrees.len() {
                            break;
                        }
                        let (idx, prefix) = subtrees[k];
                        local.push((
                            idx,
                            explore_subtree(&mut b, &mut c, prefix, &budget, cfg.max_runs),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("explorer worker panicked"))
            .collect()
    })
    .expect("explorer worker panicked");

    // Phase 3 — deterministic merge in frontier (= serial DFS) order.
    // Telemetry piggybacks on the same order: the frontier summary first,
    // then one `subtree` event per work item as it merges.
    let mut per_item: Vec<Option<SubtreeOutcome>> = items.iter().map(|_| None).collect();
    for (idx, out) in gathered {
        per_item[idx] = Some(out);
    }
    sink.emit(
        &Event::new("frontier")
            .with_u64("split_depth", cfg.split_depth as u64)
            .with_u64("frontier", items.len() as u64)
            .with_u64("leaves", (items.len() - subtrees.len()) as u64)
            .with_u64("subtrees", subtrees.len() as u64)
            .with_bool("discovery_complete", discovery_complete),
    );
    let mut runs = 0usize;
    let mut exhausted = discovery_complete;
    let mut violations = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        match item {
            FrontierItem::Leaf(violation) => {
                runs += 1;
                violations.extend(violation);
            }
            FrontierItem::Subtree(prefix) => {
                let out = per_item[i].take().expect("every subtree visited");
                sink.emit(&subtree_event(i, prefix.len(), &out));
                runs += out.runs;
                violations.extend(out.violations);
                exhausted &= out.exhausted;
            }
        }
    }
    ExploreReport {
        runs,
        exhausted,
        violations,
    }
}

/// Re-runs a single schedule (e.g. a violating path from a previous
/// exploration) and returns the engine for inspection.
pub fn replay<M: Message>(
    mut build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    path: &[usize],
) -> (Engine<M>, RunReport) {
    let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.to_vec())));
    let mut engine = build(Box::new(SharedOracle(oracle)));
    let report = engine.run();
    (engine, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftClock;
    use crate::engine::EngineConfig;
    use crate::impl_process_boilerplate;
    use crate::net::SyncNet;
    use crate::process::{Ctx, Pid, Process, TimerId};
    use crate::time::SimDuration;

    /// Two racers send to a judge; the judge records who arrived first.
    #[derive(Debug, Clone, Default)]
    struct Judge {
        first: Option<Pid>,
    }
    impl Process<u32> for Judge {
        fn on_start(&mut self, _ctx: &mut Ctx<u32>) {}
        fn on_message(&mut self, from: Pid, _m: u32, ctx: &mut Ctx<u32>) {
            if self.first.is_none() {
                self.first = Some(from);
                ctx.mark("winner", from as i64);
            }
        }
        fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    #[derive(Debug, Clone)]
    struct Racer {
        judge: Pid,
    }
    impl Process<u32> for Racer {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            ctx.send(self.judge, 1);
        }
        fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
        fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    fn build_race(oracle: Box<dyn Oracle>) -> Engine<u32> {
        let mut eng = Engine::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(100), 2)), // 2 buckets
            oracle,
            EngineConfig::default(),
        );
        eng.add_process(Box::new(Judge::default()), DriftClock::perfect()); // pid 0
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect()); // pid 1
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect()); // pid 2
        eng
    }

    #[test]
    fn explorer_finds_both_race_outcomes() {
        let mut winners = std::collections::HashSet::new();
        let report = explore(
            build_race,
            |eng, _| {
                let judge = eng.process_as::<Judge>(0).unwrap();
                winners.insert(judge.first);
                Ok(())
            },
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert!(report.all_ok());
        // 2 racers × 2 delay buckets → 4 schedules.
        assert_eq!(report.runs, 4);
        assert!(winners.contains(&Some(1)));
        assert!(winners.contains(&Some(2)));
    }

    #[test]
    fn explorer_reports_violations_with_replayable_paths() {
        let report = explore(
            build_race,
            |eng, _| {
                let judge = eng.process_as::<Judge>(0).unwrap();
                if judge.first == Some(2) {
                    Err("racer 2 won".to_owned())
                } else {
                    Ok(())
                }
            },
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert!(!report.all_ok());
        assert!(!report.violations.is_empty());
        // Every reported path replays to the same violation.
        for v in &report.violations {
            let (eng, _) = replay(build_race, &v.path);
            let judge = eng.process_as::<Judge>(0).unwrap();
            assert_eq!(judge.first, Some(2), "replay must reproduce the violation");
        }
    }

    #[test]
    fn run_budget_respected() {
        let report = explore(build_race, |_, _| Ok(()), ExploreLimits { max_runs: 2 });
        assert_eq!(report.runs, 2);
        assert!(!report.exhausted);
    }

    /// Serial vs parallel equivalence on the race example, across thread
    /// counts and split depths (including the degenerate 0 and a depth far
    /// beyond the tree).
    #[test]
    fn parallel_matches_serial_on_race() {
        let serial = explore(
            build_race,
            |eng, _| {
                let judge = eng.process_as::<Judge>(0).unwrap();
                if judge.first == Some(2) {
                    Err("racer 2 won".to_owned())
                } else {
                    Ok(())
                }
            },
            ExploreLimits::default(),
        );
        assert!(serial.exhausted);
        for threads in [2usize, 4, 8] {
            for split_depth in [0usize, 1, 2, 16] {
                let par = explore_parallel(
                    build_race,
                    |eng, _| {
                        let judge = eng.process_as::<Judge>(0).unwrap();
                        if judge.first == Some(2) {
                            Err("racer 2 won".to_owned())
                        } else {
                            Ok(())
                        }
                    },
                    ExploreConfig {
                        threads,
                        split_depth,
                        ..Default::default()
                    },
                );
                assert_eq!(par.runs, serial.runs, "t={threads} d={split_depth}");
                assert_eq!(par.exhausted, serial.exhausted);
                let paths = |r: &ExploreReport| {
                    r.violations
                        .iter()
                        .map(|v| (v.path.clone(), v.message.clone()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    paths(&par),
                    paths(&serial),
                    "violations in serial DFS order, t={threads} d={split_depth}"
                );
            }
        }
    }

    /// The instrumented explorer returns the same report as the plain one
    /// and emits `frontier` + `subtree` events in frontier order, with
    /// run counts that add up to the report's.
    #[test]
    fn instrumented_explorer_emits_frontier_ordered_events() {
        let mut ring = telemetry::RingSink::new(64);
        let par = explore_parallel_with(
            build_race,
            |_, _| Ok(()),
            ExploreConfig {
                threads: 4,
                split_depth: 1,
                ..Default::default()
            },
            &mut ring,
        );
        assert!(par.exhausted);
        assert_eq!(par.runs, 4);
        let events: Vec<_> = ring.events().collect();
        assert_eq!(events[0].kind(), "frontier");
        assert_eq!(events[0].u64_field("split_depth"), Some(1));
        assert_eq!(events[0].bool_field("discovery_complete"), Some(true));
        let subtrees: Vec<_> = events.iter().filter(|e| e.kind() == "subtree").collect();
        assert_eq!(events[0].u64_field("subtrees"), Some(subtrees.len() as u64));
        let leaves = events[0].u64_field("leaves").unwrap();
        let indices: Vec<u64> = subtrees
            .iter()
            .map(|e| e.u64_field("index").unwrap())
            .collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "subtree events in frontier order");
        let subtree_runs: u64 = subtrees.iter().map(|e| e.u64_field("runs").unwrap()).sum();
        assert_eq!(subtree_runs + leaves, par.runs as u64);
    }

    #[test]
    fn parallel_respects_run_budget() {
        let par = explore_parallel(
            build_race,
            |_, _| Ok(()),
            ExploreConfig {
                max_runs: 2,
                threads: 4,
                split_depth: 1,
            },
        );
        assert_eq!(par.runs, 2);
        assert!(!par.exhausted);
    }

    #[test]
    fn parallel_zero_threads_uses_all_cores() {
        let par = explore_parallel(build_race, |_, _| Ok(()), ExploreConfig::with_threads(0));
        assert!(par.exhausted);
        assert_eq!(par.runs, 4);
    }

    #[test]
    fn deterministic_system_explores_single_path() {
        // With 1 bucket there is no choice anywhere: exactly one schedule.
        let report = explore(
            |oracle| {
                let mut eng = Engine::new(
                    Box::new(SyncNet::worst_case(SimDuration::from_ticks(10))),
                    oracle,
                    EngineConfig::default(),
                );
                eng.add_process(Box::new(Judge::default()), DriftClock::perfect());
                eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect());
                eng
            },
            |_, _| Ok(()),
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert_eq!(report.runs, 1);
    }
}
