//! Exhaustive schedule exploration (systematic concurrency testing).
//!
//! For small protocol instances the space of scheduler choices — which
//! delay bucket each message takes, how long each grey state computes — is
//! finite once quantised. This module enumerates *every* path of that choice
//! tree (depth-first, lexicographic) and checks a safety predicate on each
//! complete run. It is the executable counterpart of the paper's "for every
//! execution" quantifier over the safety clauses ES and CS1–CS3, applied to
//! bounded instances, and is used by experiment E4 to cross-check the
//! Figure 2 automata against the theorems on all schedules of small chains.
//!
//! The mechanism: the engine draws every nondeterministic choice from an
//! [`Oracle`]; a [`ReplayOracle`] replays a prescribed prefix and records the
//! branching degree at each step; [`explore`] re-runs the simulation with
//! successive prefixes until the whole tree is covered (or a run budget is
//! hit). Because runs are deterministic given the oracle, path enumeration
//! is exactly schedule enumeration — no state snapshotting is needed.

use crate::engine::{Engine, RunReport};
use crate::oracle::{Oracle, ReplayOracle};
use crate::process::Message;
use std::cell::RefCell;
use std::rc::Rc;

/// Budget for an exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum number of complete runs (tree leaves) to execute.
    pub max_runs: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_runs: 1_000_000,
        }
    }
}

/// A safety violation found on one schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The oracle choice path reproducing the failing schedule.
    pub path: Vec<usize>,
    /// Checker-provided description.
    pub message: String,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Complete runs executed.
    pub runs: usize,
    /// True when the entire choice tree was covered within budget.
    pub exhausted: bool,
    /// All violations found (one per failing schedule).
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// True when every explored schedule satisfied the checker.
    pub fn all_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Shares a [`ReplayOracle`] between the engine (which consumes choices) and
/// the explorer (which reads the log afterwards).
struct SharedOracle(Rc<RefCell<ReplayOracle>>);

impl Oracle for SharedOracle {
    fn choose(&mut self, options: usize) -> usize {
        self.0.borrow_mut().choose(options)
    }
}

/// Exhaustively explores the schedule tree of a simulation.
///
/// * `build` — constructs a fresh engine wired to the given oracle; it must
///   be deterministic (same oracle behaviour ⇒ same run).
/// * `check` — inspects the completed engine and its [`RunReport`]; returns
///   `Err(description)` to record a violation for that schedule.
pub fn explore<M: Message>(
    mut build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    mut check: impl FnMut(&Engine<M>, &RunReport) -> Result<(), String>,
    limits: ExploreLimits,
) -> ExploreReport {
    let mut path: Vec<usize> = Vec::new();
    let mut runs = 0usize;
    let mut violations = Vec::new();
    loop {
        let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.clone())));
        let mut engine = build(Box::new(SharedOracle(oracle.clone())));
        let report = engine.run();
        runs += 1;
        if let Err(message) = check(&engine, &report) {
            let taken: Vec<usize> = oracle.borrow().log.iter().map(|&(c, _)| c).collect();
            violations.push(Violation {
                path: taken,
                message,
            });
        }
        if runs >= limits.max_runs {
            return ExploreReport {
                runs,
                exhausted: false,
                violations,
            };
        }
        let next = oracle.borrow().next_path();
        match next {
            Some(p) => path = p,
            None => {
                return ExploreReport {
                    runs,
                    exhausted: true,
                    violations,
                }
            }
        }
    }
}

/// Re-runs a single schedule (e.g. a violating path from a previous
/// exploration) and returns the engine for inspection.
pub fn replay<M: Message>(
    mut build: impl FnMut(Box<dyn Oracle>) -> Engine<M>,
    path: &[usize],
) -> (Engine<M>, RunReport) {
    let oracle = Rc::new(RefCell::new(ReplayOracle::new(path.to_vec())));
    let mut engine = build(Box::new(SharedOracle(oracle)));
    let report = engine.run();
    (engine, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftClock;
    use crate::engine::EngineConfig;
    use crate::impl_process_boilerplate;
    use crate::net::SyncNet;
    use crate::process::{Ctx, Pid, Process, TimerId};
    use crate::time::SimDuration;

    /// Two racers send to a judge; the judge records who arrived first.
    #[derive(Debug, Clone, Default)]
    struct Judge {
        first: Option<Pid>,
    }
    impl Process<u32> for Judge {
        fn on_start(&mut self, _ctx: &mut Ctx<u32>) {}
        fn on_message(&mut self, from: Pid, _m: u32, ctx: &mut Ctx<u32>) {
            if self.first.is_none() {
                self.first = Some(from);
                ctx.mark("winner", from as i64);
            }
        }
        fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    #[derive(Debug, Clone)]
    struct Racer {
        judge: Pid,
    }
    impl Process<u32> for Racer {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            ctx.send(self.judge, 1);
        }
        fn on_message(&mut self, _f: Pid, _m: u32, _c: &mut Ctx<u32>) {}
        fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
        impl_process_boilerplate!(u32);
    }

    fn build_race(oracle: Box<dyn Oracle>) -> Engine<u32> {
        let mut eng = Engine::new(
            Box::new(SyncNet::new(SimDuration::from_ticks(100), 2)), // 2 buckets
            oracle,
            EngineConfig::default(),
        );
        eng.add_process(Box::new(Judge::default()), DriftClock::perfect()); // pid 0
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect()); // pid 1
        eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect()); // pid 2
        eng
    }

    #[test]
    fn explorer_finds_both_race_outcomes() {
        let mut winners = std::collections::HashSet::new();
        let report = explore(
            build_race,
            |eng, _| {
                let judge = eng.process_as::<Judge>(0).unwrap();
                winners.insert(judge.first);
                Ok(())
            },
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert!(report.all_ok());
        // 2 racers × 2 delay buckets → 4 schedules.
        assert_eq!(report.runs, 4);
        assert!(winners.contains(&Some(1)));
        assert!(winners.contains(&Some(2)));
    }

    #[test]
    fn explorer_reports_violations_with_replayable_paths() {
        let report = explore(
            build_race,
            |eng, _| {
                let judge = eng.process_as::<Judge>(0).unwrap();
                if judge.first == Some(2) {
                    Err("racer 2 won".to_owned())
                } else {
                    Ok(())
                }
            },
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert!(!report.all_ok());
        assert!(!report.violations.is_empty());
        // Every reported path replays to the same violation.
        for v in &report.violations {
            let (eng, _) = replay(build_race, &v.path);
            let judge = eng.process_as::<Judge>(0).unwrap();
            assert_eq!(judge.first, Some(2), "replay must reproduce the violation");
        }
    }

    #[test]
    fn run_budget_respected() {
        let report = explore(build_race, |_, _| Ok(()), ExploreLimits { max_runs: 2 });
        assert_eq!(report.runs, 2);
        assert!(!report.exhausted);
    }

    #[test]
    fn deterministic_system_explores_single_path() {
        // With 1 bucket there is no choice anywhere: exactly one schedule.
        let report = explore(
            |oracle| {
                let mut eng = Engine::new(
                    Box::new(SyncNet::worst_case(SimDuration::from_ticks(10))),
                    oracle,
                    EngineConfig::default(),
                );
                eng.add_process(Box::new(Judge::default()), DriftClock::perfect());
                eng.add_process(Box::new(Racer { judge: 0 }), DriftClock::perfect());
                eng
            },
            |_, _| Ok(()),
            ExploreLimits::default(),
        );
        assert!(report.exhausted);
        assert_eq!(report.runs, 1);
    }
}
