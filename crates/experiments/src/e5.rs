//! **E5 — baselines**: the §1 criticisms, quantified.
//!
//! 1. *"the synchronous solutions of \[4\] and \[3\] do not consider clock
//!    drift"*: sweep drift × chain length; the un-tuned Interledger
//!    universal schedule degrades to failure while the paper's fine-tuned
//!    schedule stays at 100%.
//! 2. HTLC atomic swaps: happy-path works, but a griefing counterparty
//!    freezes the initiator's capital for the full `2T` window, and there
//!    is no transferable receipt — the weak protocol aborts on request
//!    instead.

use crate::stats::Rate;
use crate::sweep::parallel_map;
use crate::table::{check, Table};
use anta::net::SyncNet;
use anta::oracle::RandomOracle;
use interledger::untuned::{predicted_failure_drift_ppm, untuned_schedule};
use payment::timebounded::{ChainOutcome, ChainSetup, ClockPlan};
use payment::{SyncParams, ValuePlan};

/// One drift×n cell comparing tuned vs untuned schedules.
#[derive(Debug, Clone, Copy)]
pub struct E5Params {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Clock-drift bound in parts-per-million.
    pub rho_ppm: u64,
    /// Number of seeded runs.
    pub seeds: u64,
}

/// Results of one cell.
#[derive(Debug, Clone)]
pub struct E5Cell {
    /// The cell's parameters.
    pub params: E5Params,
    /// Success rate with the paper's drift-inflated schedule.
    pub tuned: Rate,
    /// Success rate with the drift-oblivious schedule.
    pub untuned: Rate,
}

/// Runs one cell: same seeds, same clocks, both schedules.
pub fn run_cell(p: &E5Params) -> E5Cell {
    let params = SyncParams {
        rho_ppm: p.rho_ppm,
        ..SyncParams::baseline()
    };
    let mut tuned = Rate::default();
    let mut untuned = Rate::default();
    for seed in 0..p.seeds {
        for (which, schedule) in [(0, None), (1, Some(untuned_schedule(p.n, &params)))] {
            let mut setup = ChainSetup::new(p.n, ValuePlan::uniform(p.n, 500), params, 0xE5);
            if let Some(s) = schedule {
                setup = setup.with_schedule(s);
            }
            // Adversarial-extreme clocks make failure deterministic once
            // the margin is gone; sampled clocks also fail, just later.
            let clocks = if seed % 2 == 0 {
                ClockPlan::Extremes
            } else {
                ClockPlan::Sampled { seed }
            };
            let mut eng = setup.build_engine(
                Box::new(SyncNet::worst_case(params.delta)),
                Box::new(RandomOracle::seeded(seed)),
                clocks,
            );
            let report = eng.run();
            let o = ChainOutcome::extract(&eng, &setup, report.quiescent);
            if which == 0 {
                tuned.record(o.bob_paid());
            } else {
                untuned.record(o.bob_paid());
            }
        }
    }
    E5Cell {
        params: *p,
        tuned,
        untuned,
    }
}

/// HTLC comparison figures.
#[derive(Debug, Clone)]
pub struct HtlcComparison {
    /// Griefing window (capital locked) in simulated ms for T = 500 ms.
    pub griefing_lock_ms: u64,
    /// Weak-protocol abort latency for the same scenario (impatient
    /// customer) in simulated ms.
    pub weak_abort_ms: u64,
}

/// Measures the HTLC griefing window vs the weak protocol's abort
/// latency under the same network.
pub fn htlc_comparison() -> HtlcComparison {
    use anta::time::{SimDuration, SimTime};
    use htlc::contract::HtlcChain;
    use htlc::swap::{ChainProcess, SwapInitiator, SwapResponder};
    use ledger::{Asset, CurrencyId};
    use xcrypto::KeyId;

    // HTLC griefing run: responder refuses; initiator's 100 units stay
    // locked until 2T.
    let t_ms = 500u64;
    let mut chain_a = HtlcChain::new();
    chain_a.ledger_mut().open_account(KeyId(0)).unwrap();
    chain_a.ledger_mut().open_account(KeyId(1)).unwrap();
    chain_a
        .ledger_mut()
        .mint(KeyId(0), Asset::new(CurrencyId(0), 100))
        .unwrap();
    let mut chain_b = HtlcChain::new();
    chain_b.ledger_mut().open_account(KeyId(0)).unwrap();
    chain_b.ledger_mut().open_account(KeyId(1)).unwrap();
    chain_b
        .ledger_mut()
        .mint(KeyId(1), Asset::new(CurrencyId(1), 100))
        .unwrap();
    let mut eng = anta::engine::Engine::new(
        Box::new(SyncNet::worst_case(SimDuration::from_millis(2))),
        Box::new(RandomOracle::seeded(5)),
        anta::engine::EngineConfig::default(),
    );
    eng.add_process(
        Box::new(SwapInitiator::new(
            KeyId(0),
            KeyId(1),
            2,
            3,
            Asset::new(CurrencyId(0), 100),
            b"secret".to_vec(),
            SimTime::from_millis(2 * t_ms),
        )),
        anta::clock::DriftClock::perfect(),
    );
    let mut bob = SwapResponder::new(
        KeyId(1),
        KeyId(0),
        2,
        3,
        Asset::new(CurrencyId(1), 100),
        SimTime::from_millis(t_ms),
    );
    bob.participate = false; // the griefer
    eng.add_process(Box::new(bob), anta::clock::DriftClock::perfect());
    eng.add_process(
        Box::new(ChainProcess::new(chain_a, vec![0, 1])),
        anta::clock::DriftClock::perfect(),
    );
    eng.add_process(
        Box::new(ChainProcess::new(chain_b, vec![0, 1])),
        anta::clock::DriftClock::perfect(),
    );
    eng.run_until(SimTime::from_secs(30));
    let reclaim = eng
        .trace()
        .marks("alice_reclaimed")
        .next()
        .map(|(_, real, _, _)| real)
        .expect("initiator reclaimed");
    let griefing_lock_ms = reclaim.ticks() / 1_000;

    // Weak protocol: Alice stages, Bob withholds, Alice aborts at 40 ms —
    // the whole thing resolves in ~an RTT after her patience runs out.
    use payment::weak::{Patience, TmKind, WeakOutcome, WeakSetup};
    let setup = WeakSetup::new(2, ValuePlan::uniform(2, 100), TmKind::Trusted, 0xE5)
        .with_patience(2, Patience::absent())
        .with_patience(0, Patience::until(SimDuration::from_millis(40)));
    let mut eng2 = setup.build_engine(
        Box::new(SyncNet::worst_case(SimDuration::from_millis(2))),
        Box::new(RandomOracle::seeded(6)),
    );
    eng2.run();
    let o = WeakOutcome::extract(&eng2, &setup);
    assert_eq!(o.verdict(), Some(xcrypto::Verdict::Abort));
    let abort_done = eng2
        .trace()
        .marks("weak_escrow_refunded")
        .map(|(_, real, _, _)| real)
        .max()
        .expect("refund happened");
    HtlcComparison {
        griefing_lock_ms,
        weak_abort_ms: abort_done.ticks() / 1_000,
    }
}

/// The E5 report.
pub struct E5Report {
    /// One entry per parameter-grid cell.
    pub cells: Vec<E5Cell>,
    /// Per chain length, the validator's first failing drift.
    pub predicted_failure: Vec<(usize, Option<u64>)>,
    /// The HTLC griefing comparison.
    pub htlc: HtlcComparison,
}

/// Runs the default grid.
pub fn run(seeds: u64, threads: usize) -> E5Report {
    let mut grid = Vec::new();
    for n in [2usize, 4, 6] {
        for rho_ppm in [0u64, 10_000, 50_000, 100_000, 200_000] {
            grid.push(E5Params { n, rho_ppm, seeds });
        }
    }
    let cells = parallel_map(&grid, threads, run_cell);
    let predicted_failure = [2usize, 4, 6]
        .iter()
        .map(|&n| (n, predicted_failure_drift_ppm(n, &SyncParams::baseline())))
        .collect();
    E5Report {
        cells,
        predicted_failure,
        htlc: htlc_comparison(),
    }
}

impl E5Report {
    /// The headline claims: tuned is always perfect; untuned fails
    /// somewhere on the grid.
    pub fn claims_hold(&self) -> bool {
        let tuned_perfect = self.cells.iter().all(|c| c.tuned.is_perfect());
        let untuned_fails_somewhere = self.cells.iter().any(|c| !c.untuned.is_perfect());
        tuned_perfect && untuned_fails_somewhere
    }

    /// Renders the drift-sweep table plus the HTLC comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "E5 — drift sweep: paper's tuned schedule vs Interledger untuned [4]",
            &["n", "rho(ppm)", "tuned success", "untuned success"],
        );
        for c in &self.cells {
            t.push(&[
                c.params.n.to_string(),
                c.params.rho_ppm.to_string(),
                c.tuned.render(),
                c.untuned.render(),
            ]);
        }
        let mut p = Table::new(
            "E5 — static predictor: smallest drift violating the untuned schedule",
            &["n", "predicted failure drift (ppm)"],
        );
        for (n, rho) in &self.predicted_failure {
            p.push(&[
                n.to_string(),
                rho.map(|r| r.to_string()).unwrap_or_else(|| "none".into()),
            ]);
        }
        format!(
            "{}\n{}\nHTLC vs weak protocol (honest counterparty walks away):\n  HTLC griefing window: initiator's capital locked {} ms (= 2T)\n  weak protocol abort: everyone refunded within {} ms of losing patience\n\nClaims hold (tuned perfect, untuned fails under drift): {}\n",
            t.render(),
            p.render(),
            self.htlc.griefing_lock_ms,
            self.htlc.weak_abort_ms,
            check(self.claims_hold()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_beats_untuned_at_high_drift() {
        let cell = run_cell(&E5Params {
            n: 4,
            rho_ppm: 200_000,
            seeds: 4,
        });
        assert!(cell.tuned.is_perfect(), "{:?}", cell.tuned);
        assert!(!cell.untuned.is_perfect(), "{:?}", cell.untuned);
    }

    #[test]
    fn both_perfect_without_drift() {
        let cell = run_cell(&E5Params {
            n: 3,
            rho_ppm: 0,
            seeds: 3,
        });
        assert!(cell.tuned.is_perfect());
        assert!(cell.untuned.is_perfect());
    }

    #[test]
    fn htlc_comparison_shows_the_gap() {
        let h = htlc_comparison();
        assert!(
            h.griefing_lock_ms >= 1_000,
            "locked for 2T = 1000 ms: {h:?}"
        );
        assert!(h.weak_abort_ms < 200, "weak abort is quick: {h:?}");
    }
}
