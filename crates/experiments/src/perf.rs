//! **P — engineering performance measurements** (complements the
//! criterion benches with simulated-time metrics the benches cannot see).
//!
//! * protocol cost: messages and simulated completion time per payment,
//!   as functions of chain length — the μ-benchmarks behind the paper's
//!   "2n+1 participants" scaling;
//! * consensus: decision round and message count vs committee size;
//! * engine: events processed for a fixed workload (the denominator for
//!   wall-clock events/sec measured by criterion).

use crate::table::Table;
use anta::net::SyncNet;
use anta::oracle::RandomOracle;
use anta::trace::TraceMode;
use payment::timebounded::{ChainOutcome, ChainSetup, ClockPlan};
use payment::{SyncParams, ValuePlan};

/// Per-chain-length protocol cost.
#[derive(Debug, Clone)]
pub struct ChainCost {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Messages sent during the run.
    pub messages: usize,
    /// Simulated completion time in ticks.
    pub completion_ticks: u64,
    /// The events, in dispatch order.
    pub events: u64,
}

/// Measures the time-bounded protocol's cost for one chain length.
pub fn chain_cost(n: usize) -> ChainCost {
    let setup = ChainSetup::new(n, ValuePlan::uniform(n, 100), SyncParams::baseline(), 0xF0);
    let mut eng = setup.build_engine(
        Box::new(SyncNet::new(setup.params.delta, 16)),
        Box::new(RandomOracle::seeded(1)),
        ClockPlan::Sampled { seed: 1 },
    );
    let report = eng.run();
    let outcome = ChainOutcome::extract(&eng, &setup, report.quiescent);
    assert!(outcome.bob_paid(), "perf baseline must succeed");
    ChainCost {
        n,
        messages: eng.trace().sent_count(),
        completion_ticks: report.end_time.ticks(),
        events: report.events,
    }
}

/// The engine-throughput workload behind the `engine_10k_messages`
/// criterion bench and the `bench` binary: a two-process ping-pong of
/// `messages` messages under a 16-bucket synchronous network. Returns the
/// number of dispatched events (identical across trace modes — the mode
/// affects only what the trace stores, never the schedule).
pub fn engine_events_workload(messages: u32, trace_mode: TraceMode) -> u64 {
    use anta::clock::DriftClock;
    use anta::engine::{Engine, EngineConfig};
    use anta::process::{Ctx, Pid, Process, TimerId};
    use anta::time::SimDuration;

    #[derive(Debug, Clone)]
    struct Pinger {
        peer: Pid,
        limit: u32,
        first: bool,
    }
    impl Process<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            if self.first {
                ctx.send(self.peer, 0);
            }
        }
        fn on_message(&mut self, from: Pid, msg: u32, ctx: &mut Ctx<u32>) {
            if msg >= self.limit {
                ctx.halt();
            } else {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _i: TimerId, _c: &mut Ctx<u32>) {}
        anta::impl_process_boilerplate!(u32);
    }

    let mut eng: Engine<u32> = Engine::new(
        Box::new(SyncNet::new(SimDuration::from_ticks(50), 16)),
        Box::new(RandomOracle::seeded(3)),
        EngineConfig {
            trace_mode,
            ..EngineConfig::default()
        },
    );
    for (peer, first) in [(1, true), (0, false)] {
        eng.add_process(
            Box::new(Pinger {
                peer,
                limit: messages,
                first,
            }),
            DriftClock::perfect(),
        );
    }
    eng.run().events
}

/// Consensus cost for one committee size.
#[derive(Debug, Clone)]
pub struct ConsensusCost {
    /// Committee size.
    pub k: usize,
    /// Highest round at which any notary decided.
    pub decision_round: u32,
    /// Messages sent during the run.
    pub messages: usize,
}

/// Measures a consensus instance for committee size `k` (all honest,
/// synchronous network).
pub fn consensus_cost(k: usize) -> ConsensusCost {
    use anta::clock::DriftClock;
    use anta::engine::{Engine, EngineConfig};
    use anta::time::SimDuration;
    use consensus::{Config, ConsMsg, NotaryCore, NotaryProcess};
    use std::sync::Arc;
    let mut pki = xcrypto::Pki::new(0xF1);
    let pairs = pki.register_many(k);
    let members: Vec<xcrypto::KeyId> = pairs.iter().map(|(id, _)| *id).collect();
    let pki = Arc::new(pki);
    let cfg = Config {
        instance: 1,
        members,
        f: k.saturating_sub(1) / 3,
        base_timeout: SimDuration::from_millis(50),
        validity: Arc::new(|_: &u64| true),
    };
    let mut eng: Engine<ConsMsg<u64>> = Engine::new(
        Box::new(SyncNet::new(SimDuration::from_millis(2), 8)),
        Box::new(RandomOracle::seeded(2)),
        EngineConfig::default(),
    );
    for (i, (_, signer)) in pairs.iter().enumerate() {
        let peers: Vec<usize> = (0..k).filter(|&p| p != i).collect();
        let core = NotaryCore::new(cfg.clone(), signer.clone(), pki.clone(), 42u64);
        eng.add_process(
            Box::new(NotaryProcess::new(core, peers)),
            DriftClock::perfect(),
        );
    }
    let report = eng.run();
    let mut round = 0;
    for i in 0..k {
        let p = eng.process_as::<NotaryProcess<u64>>(i).expect("notary");
        assert_eq!(p.decided(), Some(&42));
        if let Some((r, _, _)) = p.decision() {
            round = round.max(*r);
        }
    }
    let _ = report;
    ConsensusCost {
        k,
        decision_round: round,
        messages: eng.trace().sent_count(),
    }
}

/// The perf report.
pub struct PerfReport {
    /// Per-chain-length protocol costs.
    pub chain: Vec<ChainCost>,
    /// Per-committee-size consensus costs.
    pub consensus: Vec<ConsensusCost>,
}

/// Runs all perf measurements.
pub fn run() -> PerfReport {
    PerfReport {
        chain: [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&n| chain_cost(n))
            .collect(),
        consensus: [4usize, 7, 10, 13]
            .iter()
            .map(|&k| consensus_cost(k))
            .collect(),
    }
}

impl PerfReport {
    /// Renders both tables.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "P — protocol cost vs chain length (time-bounded, success path)",
            &["n", "messages", "completion (µs sim)", "engine events"],
        );
        for c in &self.chain {
            t.push(&[
                c.n.to_string(),
                c.messages.to_string(),
                c.completion_ticks.to_string(),
                c.events.to_string(),
            ]);
        }
        let mut u = Table::new(
            "P — consensus cost vs committee size (all honest, synchronous)",
            &["k", "decision round", "messages"],
        );
        for c in &self.consensus {
            u.push(&[
                c.k.to_string(),
                c.decision_round.to_string(),
                c.messages.to_string(),
            ]);
        }
        format!("{}\n{}", t.render(), u.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_cost_scales_linearly_in_messages() {
        let c2 = chain_cost(2);
        let c8 = chain_cost(8);
        // 5n+… messages: G,$,P per hop + χ,$ settlement per hop.
        assert!(c8.messages > c2.messages * 3, "{c2:?} vs {c8:?}");
        assert!(c8.messages < c2.messages * 8, "{c2:?} vs {c8:?}");
        assert!(c8.completion_ticks > c2.completion_ticks);
    }

    #[test]
    fn engine_workload_events_identical_across_trace_modes() {
        let full = engine_events_workload(1_000, TraceMode::Full);
        let lean = engine_events_workload(1_000, TraceMode::CountersOnly);
        assert_eq!(full, lean);
        assert!(full > 1_000, "two starts + one event per message: {full}");
    }

    #[test]
    fn consensus_decides_round_zero_when_honest_and_fast() {
        let c = consensus_cost(4);
        assert_eq!(c.decision_round, 0, "{c:?}");
        assert!(c.messages > 0);
    }
}
