//! Tiny deterministic digests for artifact stamping and checkpoint
//! integrity — no external hash crates, no allocation beyond the output
//! string.
//!
//! Two codes, two jobs:
//!
//! * [`fnv1a64`] — a 64-bit content digest. Experiment JSONs stamp
//!   `config_digest` with it so a resumed or re-rendered artifact can be
//!   matched to the exact configuration that produced it, and the
//!   campaign checkpoint refuses to resume under a different config.
//!   FNV-1a is not collision-resistant; it fingerprints honest configs,
//!   it does not authenticate hostile ones.
//! * [`crc32`] — CRC-32 (IEEE 802.3 polynomial, the zlib convention) for
//!   checkpoint **corruption** detection: a torn or bit-flipped payload
//!   fails the CRC and the campaign falls back to the previous epoch.

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Renders a 64-bit digest as fixed-width lowercase hex (16 chars).
pub fn hex16(d: u64) -> String {
    format!("{d:016x}")
}

const fn crc32_table() -> [u32; 256] {
    // Reflected polynomial 0xEDB88320 (IEEE 802.3), one byte per entry.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, zlib-compatible (init `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_known_vectors() {
        // zlib's classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn hex16_is_fixed_width() {
        assert_eq!(hex16(0xABC), "0000000000000abc");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn single_bit_flip_changes_both_digests() {
        let a = b"campaign checkpoint payload".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(fnv1a64(&a), fnv1a64(&b));
        assert_ne!(crc32(&a), crc32(&b));
    }
}
