//! # xchain-experiments — the harness regenerating every paper artefact
//!
//! The brief announcement contains two figures, three theorems, and two
//! implicit comparison tables (§1's baseline criticisms and §5's property
//! correspondence). Each has an experiment here (DESIGN.md §6 maps them):
//!
//! | id | artefact | module |
//! |----|----------|--------|
//! | E1 | Theorem 1 (time-bounded protocol, synchrony) | [`e1`] |
//! | E2 | Theorem 2 (impossibility, partial synchrony) | [`e2`] |
//! | E3 | Theorem 3 (weak protocol + transaction managers) | [`e3`] |
//! | E4 | Figures 1 & 2 (regeneration + cross-validation) | [`e4`] |
//! | E5 | §1 baselines (drift sweep vs \[4\]; HTLC griefing) | [`e5`] |
//! | E6 | timeout-calculus ablation ("d_i calculated in \[5\]") | [`e6`] |
//! | E7 | §5 relation with cross-chain deals \[3\] | [`e7`] |
//! | P  | engineering performance | [`perf`] |
//! | E8 | Monte-Carlo traffic simulation | `xchain-sim` (binary `exp8`) |
//!
//! Binaries `exp1`…`exp7`, `expperf` and `expall` print the tables that
//! EXPERIMENTS.md records (E8 lives in the `xchain-sim` crate, which
//! builds on this one). Sweeps parallelise over seeds/parameters with
//! crossbeam scoped threads ([`sweep`]; re-exported as
//! [`parallel_map`]/[`grid`] for downstream crates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod e1;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod perf;
pub mod stats;
pub mod sweep;
pub mod table;

// The parallel executor is this crate's public concurrency API: downstream
// crates (`xchain-sim`'s Monte-Carlo runner, future sweep harnesses) depend
// on it as a normal dependency rather than re-growing their own thread
// pools or taking a dev-dependency cycle through the umbrella crate.
pub use sweep::{grid, parallel_map, try_parallel_map, ItemPanic};
