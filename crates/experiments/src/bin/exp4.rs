//! E4 — Figures 1 & 2 regeneration; pass --dot to dump Graphviz sources.
fn main() {
    let r = experiments::e4::run(3);
    print!("{}", r.render());
    if std::env::args().any(|a| a == "--dot") {
        println!("{}", r.figure1_dot);
        for (name, dot) in &r.figure2_dots {
            println!("// {name}\n{dot}");
        }
    }
}
