//! E4 — Figures 1 & 2 regeneration, plus exhaustive/reduced exploration.
//!
//! Modes:
//!
//! * no flags — the classic E4 report (figures, cross-check, small
//!   exploration); add `--dot` to dump Graphviz sources;
//! * `--explore N` — explore the n = N chain instance with the reduced
//!   (DPOR-style) explorer and print the exploration summary. Options:
//!   `--sigma B` (σ buckets, default 1), `--threads T` (default 0 = all
//!   cores), `--max-runs R` (executed-schedule budget, default 10M),
//!   `--differential` (run full enumeration too and compare verdicts —
//!   exits non-zero on mismatch), `--full` (full enumeration instead of
//!   reduced), `--telemetry FILE` (append JSONL telemetry), `--quick`
//!   (shrink the budget to 200k for CI smoke runs).

use experiments::e4;
use telemetry::{JsonlSink, NullSink, TelemetrySink};

struct Args {
    dot: bool,
    explore: Option<usize>,
    sigma: usize,
    threads: usize,
    max_runs: usize,
    differential: bool,
    full: bool,
    telemetry: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        dot: false,
        explore: None,
        sigma: 1,
        threads: 0,
        max_runs: 10_000_000,
        differential: false,
        full: false,
        telemetry: None,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dot" => args.dot = true,
            "--explore" => {
                args.explore = Some(
                    it.next()
                        .expect("--explore needs a chain size")
                        .parse()
                        .expect("chain size"),
                )
            }
            "--sigma" => {
                args.sigma = it
                    .next()
                    .expect("--sigma needs a bucket count")
                    .parse()
                    .expect("sigma buckets")
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("thread count")
            }
            "--max-runs" => {
                args.max_runs = it
                    .next()
                    .expect("--max-runs needs a budget")
                    .parse()
                    .expect("run budget")
            }
            "--differential" => args.differential = true,
            "--full" => args.full = true,
            "--telemetry" => args.telemetry = Some(it.next().expect("--telemetry needs a file")),
            "--quick" => quick = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if quick {
        args.max_runs = args.max_runs.min(200_000);
    }
    args
}

fn print_report(label: &str, r: &anta::explore::ExploreReport, wall_s: f64) {
    let attempted = r.runs + r.dedup_hits;
    println!("[{label}] executed runs      : {}", r.runs);
    println!("[{label}] dedup cuts         : {}", r.dedup_hits);
    println!("[{label}] dead-branch prunes : {}", r.dead_branch_prunes);
    println!("[{label}] re-splits          : {}", r.resplits);
    println!("[{label}] exhausted          : {}", r.exhausted);
    println!("[{label}] violations         : {}", r.violations.len());
    if let Some(ratio) = r.reduction_ratio() {
        println!("[{label}] reduction ratio    : {ratio:.6} (executed/full)");
    }
    println!(
        "[{label}] prune rate         : {:.4} ({} of {} attempts cut)",
        r.prune_rate(),
        r.dedup_hits,
        attempted
    );
    if wall_s > 0.0 {
        println!(
            "[{label}] wall               : {wall_s:.2}s ({:.0} schedules/s)",
            attempted as f64 / wall_s
        );
    }
}

fn main() {
    let args = parse_args();
    let Some(n) = args.explore else {
        let r = e4::run(3);
        print!("{}", r.render());
        if args.dot {
            println!("{}", r.figure1_dot);
            for (name, dot) in &r.figure2_dots {
                println!("// {name}\n{dot}");
            }
        }
        return;
    };

    let mut sink: Box<dyn TelemetrySink> = match &args.telemetry {
        Some(path) => {
            Box::new(JsonlSink::create(std::path::Path::new(path)).expect("create telemetry file"))
        }
        None => Box::new(NullSink),
    };
    println!(
        "E4 exploration: n = {n}, sigma_buckets = {}, threads = {}, max_runs = {}",
        args.sigma, args.threads, args.max_runs
    );
    let started = std::time::Instant::now();
    if args.differential {
        let diff = e4::explore_instance_differential(
            n,
            args.threads,
            args.max_runs,
            args.sigma,
            sink.as_mut(),
        );
        print_report("full", &diff.full, 0.0);
        print_report("reduced", &diff.reduced, 0.0);
        println!("differential wall: {:.2}s", started.elapsed().as_secs_f64());
        match &diff.mismatch {
            None => println!("differential: AGREE"),
            Some(m) => {
                println!("differential: MISMATCH — {m}");
                std::process::exit(1);
            }
        }
        if !diff.full.all_ok() {
            std::process::exit(2);
        }
    } else {
        let r = if args.full {
            e4::explore_instance_opts_with(
                n,
                args.threads,
                args.max_runs,
                args.sigma,
                sink.as_mut(),
            )
        } else {
            e4::explore_instance_dpor_with(
                n,
                args.threads,
                args.max_runs,
                args.sigma,
                sink.as_mut(),
            )
        };
        let wall = started.elapsed().as_secs_f64();
        print_report(if args.full { "full" } else { "reduced" }, &r, wall);
        if !r.all_ok() {
            std::process::exit(2);
        }
    }
}
