//! Runs every experiment at a moderate seed budget (EXPERIMENTS.md data).
fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!("{}", experiments::e1::run(seeds, 0).render());
    println!("{}", experiments::e2::run().render());
    println!("{}", experiments::e3::run(seeds, 0).render());
    println!("{}", experiments::e4::run(3).render());
    println!("{}", experiments::e5::run(seeds.min(10), 0).render());
    println!("{}", experiments::e6::run(seeds.min(10), 0).render());
    println!("{}", experiments::e7::run().render());
    println!("{}", experiments::perf::run().render());
}
