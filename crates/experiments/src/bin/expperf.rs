//! P — performance measurements.
fn main() {
    print!("{}", experiments::perf::run().render());
}
