//! E6 — timeout-calculus ablation.
fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    print!("{}", experiments::e6::run(seeds, 0).render());
}
