//! E1 — Theorem 1 validation sweep.
fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    print!("{}", experiments::e1::run(seeds, 0).render());
}
