//! E2 — Theorem 2 impossibility witnesses.
fn main() {
    print!("{}", experiments::e2::run().render());
}
