//! E3 — Theorem 3 weak-protocol sweep.
fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    print!("{}", experiments::e3::run(seeds, 0).render());
}
