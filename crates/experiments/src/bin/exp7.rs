//! E7 — relation with cross-chain deals.
fn main() {
    print!("{}", experiments::e7::run().render());
}
