//! **E7 — §5: relation with cross-chain deals.**
//!
//! Regenerates the section's comparison as data:
//!
//! * the property matrix of the two HLS deal protocols (timelock /
//!   certified) × network assumptions, measured by running them;
//! * the encoding counterexamples: payment chains are not well-formed
//!   deals; swaps/cycles are not payments;
//! * the §5 vocabulary correspondence table.

use crate::e2::{timelock_deal_control, timelock_deal_violation};
use crate::table::{check, Table};
use anta::net::{PartialSyncNet, SyncNet};
use anta::oracle::RandomOracle;
use anta::time::{SimDuration, SimTime};
use deals::certified::{
    extract_certified_outcome, CertifiedChain, CertifiedEscrow, CertifiedParty,
};
use deals::relation::{deal_as_payment, payment_as_deal, property_correspondence, NotAPayment};
use deals::timelock::DealInstance;
use deals::{DealMatrix, DealOutcome};
use ledger::{Asset, CurrencyId};

fn swap_deal() -> DealMatrix {
    let mut d = DealMatrix::new(2);
    d.add(0, 1, Asset::new(CurrencyId(0), 5));
    d.add(1, 0, Asset::new(CurrencyId(1), 7));
    d
}

/// Runs the certified protocol on the swap under the given network;
/// optionally one party is impatient.
pub fn run_certified(
    partial_sync: bool,
    impatient: bool,
) -> (DealOutcome, bool /* log integrity */) {
    let (inst, signers) = DealInstance::generate(swap_deal(), 0xE7);
    let cbc_pid = inst.next_free_pid();
    let net: Box<dyn anta::net::NetModel<deals::DMsg>> = if partial_sync {
        Box::new(PartialSyncNet::new(
            SimTime::from_millis(1_500),
            SimDuration::from_millis(2),
        ))
    } else {
        Box::new(SyncNet::new(SimDuration::from_millis(2), 8))
    };
    let mut eng = anta::engine::Engine::new(
        net,
        Box::new(RandomOracle::seeded(3)),
        anta::engine::EngineConfig::default(),
    );
    for (p, s) in signers.iter().enumerate() {
        let mut party = CertifiedParty::new(&inst, p, s.clone(), cbc_pid);
        if impatient && p == 0 {
            party.patience = Some(SimDuration::from_millis(50));
        }
        eng.add_process(Box::new(party), anta::clock::DriftClock::perfect());
    }
    for k in 0..inst.deal.arcs().len() {
        eng.add_process(
            Box::new(CertifiedEscrow::new(&inst, k)),
            anta::clock::DriftClock::perfect(),
        );
    }
    let subscribers: Vec<usize> = (0..cbc_pid).collect();
    eng.add_process(
        Box::new(CertifiedChain::new(&inst, subscribers)),
        anta::clock::DriftClock::perfect(),
    );
    eng.run_until(SimTime::from_secs(120));
    let outcome = extract_certified_outcome(&eng, &inst);
    let integrity = eng
        .process_as::<CertifiedChain>(cbc_pid)
        .map(|c| c.log().verify_integrity().is_ok())
        .unwrap_or(false);
    (outcome, integrity)
}

/// One row of the measured deal-protocol property matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The deal protocol measured.
    pub protocol: &'static str,
    /// Network assumption of the run.
    pub network: &'static str,
    /// Participant behaviour of the run.
    pub scenario: &'static str,
    /// Every compliant payoff acceptable.
    pub safety: bool,
    /// No compliant asset escrowed forever.
    pub termination: bool,
    /// Everything transferred.
    pub strong_liveness: bool,
}

/// The E7 report.
pub struct E7Report {
    /// The measured property matrix.
    pub matrix: Vec<MatrixRow>,
    /// Whether the encoded payment chain is strongly connected.
    pub payment_chain_well_formed: bool,
    /// Result of reading the swap as a payment chain.
    pub swap_as_payment: Result<(), NotAPayment>,
    /// Hash-chain verification of the CBC log.
    pub certified_log_integrity: bool,
}

/// Runs all E7 measurements.
pub fn run() -> E7Report {
    let mut matrix = Vec::new();

    // Timelock, synchrony, all compliant: full commit.
    let tl_sync = timelock_deal_control();
    matrix.push(MatrixRow {
        protocol: "timelock commit [3]",
        network: "synchronous",
        scenario: "all compliant",
        safety: tl_sync.safe_for(&swap_deal(), &[0, 1]),
        termination: true,
        strong_liveness: tl_sync.is_full_commit(),
    });

    // Timelock, partial synchrony: safety falls (E2's witness).
    let tl_psync = timelock_deal_violation();
    matrix.push(MatrixRow {
        protocol: "timelock commit [3]",
        network: "partially synchronous",
        scenario: tl_psync.violated,
        safety: false,
        termination: true,
        strong_liveness: false,
    });

    // Certified, partial synchrony, patient: safety + termination +
    // (here) even full commit, since everyone waits out GST.
    let (cert_psync, integrity1) = run_certified(true, false);
    matrix.push(MatrixRow {
        protocol: "certified blockchain [3]",
        network: "partially synchronous",
        scenario: "all compliant, patient",
        safety: cert_psync.safe_for(&swap_deal(), &[0, 1]),
        termination: true,
        strong_liveness: cert_psync.is_full_commit(),
    });

    // Certified, partial synchrony, impatient: safe abort — no strong
    // liveness guarantee.
    let (cert_abort, integrity2) = run_certified(true, true);
    matrix.push(MatrixRow {
        protocol: "certified blockchain [3]",
        network: "partially synchronous",
        scenario: "one impatient party",
        safety: cert_abort.safe_for(&swap_deal(), &[0, 1]),
        termination: true,
        strong_liveness: cert_abort.is_full_commit(),
    });

    // Encodings.
    let amounts = vec![
        Asset::new(CurrencyId(0), 100),
        Asset::new(CurrencyId(0), 95),
        Asset::new(CurrencyId(0), 90),
    ];
    let payment_chain_well_formed = payment_as_deal(&amounts).is_well_formed();
    let swap_as_payment = deal_as_payment(&swap_deal()).map(|_| ());

    E7Report {
        matrix,
        payment_chain_well_formed,
        swap_as_payment,
        certified_log_integrity: integrity1 && integrity2,
    }
}

impl E7Report {
    /// The §5 claims, empirically.
    pub fn claims_hold(&self) -> bool {
        let timelock_sync_full = self.matrix.iter().any(|r| {
            r.protocol.starts_with("timelock")
                && r.network == "synchronous"
                && r.strong_liveness
                && r.safety
        });
        let timelock_psync_broken = self
            .matrix
            .iter()
            .any(|r| r.protocol.starts_with("timelock") && r.network != "synchronous" && !r.safety);
        let certified_psync_safe = self
            .matrix
            .iter()
            .filter(|r| r.protocol.starts_with("certified"))
            .all(|r| r.safety && r.termination);
        let no_liveness_promise = self
            .matrix
            .iter()
            .any(|r| r.protocol.starts_with("certified") && !r.strong_liveness);
        timelock_sync_full
            && timelock_psync_broken
            && certified_psync_safe
            && no_liveness_promise
            && !self.payment_chain_well_formed
            && self.swap_as_payment.is_err()
    }

    /// Renders all three tables.
    pub fn render(&self) -> String {
        let mut m = Table::new(
            "E7 — measured property matrix of the HLS deal protocols",
            &[
                "protocol",
                "network",
                "scenario",
                "Safety",
                "Termination",
                "StrongLiveness",
            ],
        );
        for r in &self.matrix {
            m.push(&[
                r.protocol.to_string(),
                r.network.to_string(),
                r.scenario.to_string(),
                check(r.safety),
                check(r.termination),
                check(r.strong_liveness),
            ]);
        }
        let mut c = Table::new(
            "E7 — §5 property correspondence",
            &["deals [3]", "payments (this paper)"],
        );
        for (a, b) in property_correspondence() {
            c.push(&[a.to_string(), b.to_string()]);
        }
        format!(
            "{}\n{}\nEncodings:\n  payment chain as deal is well-formed: {} (payments ⊄ deals)\n  swap as payment: {:?} (deals ⊄ payments)\n  certified chain log integrity: {}\n\n§5 claims hold: {}\n",
            m.render(),
            c.render(),
            check(self.payment_chain_well_formed),
            self.swap_as_payment,
            check(self.certified_log_integrity),
            check(self.claims_hold()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_report_claims_hold() {
        let r = run();
        assert!(r.claims_hold(), "{}", r.render());
        assert!(!r.payment_chain_well_formed);
        assert!(r.swap_as_payment.is_err());
        assert!(r.certified_log_integrity);
    }

    #[test]
    fn certified_impatient_aborts_safely() {
        let (o, _) = run_certified(true, true);
        assert!(o.is_full_abort());
        assert!(o.safe_for(&swap_deal(), &[0, 1]));
    }
}
