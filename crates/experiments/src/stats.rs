//! Small statistics helpers for the experiment reports.

/// Summary statistics over a sample of `u64` measurements (times in
/// ticks, message counts…).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample.
    pub fn of(samples: &[u64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        let mean = sum as f64 / n as f64;
        let var = sorted
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        Some(Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            stddev: var.sqrt(),
            p50: percentile(&sorted, 50),
            p99: percentile(&sorted, 99),
        })
    }
}

/// Nearest-rank percentile over a pre-sorted slice. Total: an empty
/// sample yields 0 rather than panicking (aggregation layers represent
/// "no samples" as `Option<Summary>`, but ad-hoc callers — e.g. a sweep
/// cell whose success-latency vector is empty — must not be able to
/// crash a report over it), and a single-sample slice yields that sample
/// for every `p`.
pub fn percentile(sorted: &[u64], p: u32) -> u64 {
    assert!(p <= 100);
    let Some(&first) = sorted.first() else {
        return 0;
    };
    if p == 0 {
        return first;
    }
    let rank = (p as usize * sorted.len()).div_ceil(100);
    sorted[rank.saturating_sub(1)]
}

/// Success-rate counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rate {
    /// Successful trials.
    pub hits: usize,
    /// Total trials.
    pub total: usize,
}

impl Rate {
    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.total += 1;
        if success {
            self.hits += 1;
        }
    }

    /// The rate in `[0, 1]`; `None` when empty.
    pub fn value(&self) -> Option<f64> {
        (self.total > 0).then(|| self.hits as f64 / self.total as f64)
    }

    /// True when every trial succeeded (and at least one ran).
    pub fn is_perfect(&self) -> bool {
        self.total > 0 && self.hits == self.total
    }

    /// Renders as `hits/total (pp.p%)`.
    pub fn render(&self) -> String {
        match self.value() {
            Some(v) => format!("{}/{} ({:.1}%)", self.hits, self.total, 100.0 * v),
            None => "0/0".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4, 1, 3, 2, 5]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p99, 5);
        assert!(s.stddev > 1.0 && s.stddev < 2.0);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[7]).unwrap();
        assert_eq!((s.min, s.max, s.p50, s.p99), (7, 7, 7, 7));
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&v, 0), 1);
    }

    #[test]
    fn percentile_edge_cases_empty_and_singleton() {
        // Empty sample: total function, no panic, conventional 0.
        assert_eq!(percentile(&[], 0), 0);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[], 99), 0);
        // Singleton: every percentile is the sample (nearest rank of 1).
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[42], p), 42, "p{p}");
        }
    }

    #[test]
    fn rate_counting() {
        let mut r = Rate::default();
        assert_eq!(r.value(), None);
        r.record(true);
        r.record(true);
        r.record(false);
        assert_eq!(r.hits, 2);
        assert_eq!(r.total, 3);
        assert!(!r.is_perfect());
        assert!(r.render().starts_with("2/3"));
        let mut p = Rate::default();
        p.record(true);
        assert!(p.is_perfect());
    }
}
