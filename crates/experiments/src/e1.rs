//! **E1 — Theorem 1**: the time-bounded protocol under synchrony.
//!
//! Sweeps chain length × drift bound × seeds; every run draws random
//! message delays, computation times, clock rates and offsets within the
//! synchrony envelope. Claim under test: success rate is exactly 100%,
//! every Definition 1 clause holds, and Alice's measured termination time
//! never exceeds the a-priori bound from the timeout calculus.

use crate::stats::{Rate, Summary};
use crate::sweep::parallel_map;
use crate::table::{check, Table};
use anta::net::SyncNet;
use anta::oracle::RandomOracle;
use payment::properties::{check_definition1, Compliance};
use payment::timebounded::{ChainOutcome, ChainSetup, ClockPlan};
use payment::{SyncParams, ValuePlan};

/// Parameters of one E1 cell.
#[derive(Debug, Clone, Copy)]
pub struct E1Params {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Clock-drift bound in parts-per-million.
    pub rho_ppm: u64,
    /// Number of seeded runs.
    pub seeds: u64,
}

/// Result of one E1 cell.
#[derive(Debug, Clone)]
pub struct E1Cell {
    /// The cell's parameters.
    pub params: E1Params,
    /// Bob-paid success rate.
    pub success: Rate,
    /// Definition 1 all-clauses success rate.
    pub props_ok: Rate,
    /// Alice's termination time as a fraction of the a-priori bound
    /// (ticks of measured / ticks of bound, sampled per run, ×1000).
    pub bound_usage_permille: Summary,
}

/// Runs one cell.
pub fn run_cell(p: &E1Params) -> E1Cell {
    let params = SyncParams {
        rho_ppm: p.rho_ppm,
        ..SyncParams::baseline()
    };
    let setup = ChainSetup::new(p.n, ValuePlan::with_commission(p.n, 1_000, 7), params, 0xE1);
    let mut success = Rate::default();
    let mut props_ok = Rate::default();
    let mut usage = Vec::with_capacity(p.seeds as usize);
    for seed in 0..p.seeds {
        let mut eng = setup.build_engine(
            Box::new(SyncNet::new(params.delta, 64)),
            Box::new(RandomOracle::seeded(seed)),
            ClockPlan::Sampled { seed },
        );
        let report = eng.run();
        let outcome = ChainOutcome::extract(&eng, &setup, report.quiescent);
        success.record(outcome.bob_paid());
        let verdicts = check_definition1(&outcome, &setup, &Compliance::all_compliant());
        props_ok.record(verdicts.all_ok());
        if let (Some(view), Some(sent)) = (outcome.customers[0], outcome.alice_sent_local) {
            if let Some(halt) = view.halted_local {
                let elapsed = halt.saturating_since(sent).ticks();
                usage.push(elapsed * 1_000 / setup.schedule.alice_bound.ticks().max(1));
            }
        }
    }
    E1Cell {
        params: *p,
        success,
        props_ok,
        bound_usage_permille: Summary::of(&usage).expect("alice always engages"),
    }
}

/// The full E1 report.
pub struct E1Report {
    /// One entry per parameter-grid cell.
    pub cells: Vec<E1Cell>,
}

/// Runs the sweep (default grid if `cells` is empty).
pub fn run(seeds: u64, threads: usize) -> E1Report {
    let mut grid = Vec::new();
    for n in [1usize, 2, 4, 8, 12] {
        for rho_ppm in [0u64, 1_000, 50_000, 150_000] {
            grid.push(E1Params { n, rho_ppm, seeds });
        }
    }
    let cells = parallel_map(&grid, threads, run_cell);
    E1Report { cells }
}

impl E1Report {
    /// True iff the theorem's claims held in every cell.
    pub fn theorem_holds(&self) -> bool {
        self.cells.iter().all(|c| {
            c.success.is_perfect() && c.props_ok.is_perfect() && c.bound_usage_permille.max <= 1_000
        })
    }

    /// Renders the table EXPERIMENTS.md records.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "E1 — Theorem 1: time-bounded protocol under synchrony",
            &[
                "n",
                "rho(ppm)",
                "runs",
                "Bob paid",
                "Def.1 holds",
                "T-bound use p50/p99/max (‰)",
            ],
        );
        for c in &self.cells {
            t.push(&[
                c.params.n.to_string(),
                c.params.rho_ppm.to_string(),
                c.success.total.to_string(),
                c.success.render(),
                c.props_ok.render(),
                format!(
                    "{}/{}/{}",
                    c.bound_usage_permille.p50,
                    c.bound_usage_permille.p99,
                    c.bound_usage_permille.max
                ),
            ]);
        }
        format!(
            "{}\nTheorem 1 empirically holds on this grid: {}\n",
            t.render(),
            check(self.theorem_holds())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_perfect() {
        let cell = run_cell(&E1Params {
            n: 3,
            rho_ppm: 100_000,
            seeds: 10,
        });
        assert!(cell.success.is_perfect(), "{:?}", cell.success);
        assert!(cell.props_ok.is_perfect());
        assert!(cell.bound_usage_permille.max <= 1_000, "bound exceeded");
    }

    #[test]
    fn small_sweep_theorem_holds() {
        let report = E1Report {
            cells: parallel_map(
                &[
                    E1Params {
                        n: 1,
                        rho_ppm: 0,
                        seeds: 5,
                    },
                    E1Params {
                        n: 4,
                        rho_ppm: 150_000,
                        seeds: 5,
                    },
                ],
                0,
                run_cell,
            ),
        };
        assert!(report.theorem_holds());
        let s = report.render();
        assert!(s.contains("Theorem 1 empirically holds on this grid: yes"));
    }
}
