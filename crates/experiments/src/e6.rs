//! **E6 — ablation of the timeout calculus** (the "precise values of d_i"
//! the brief announcement defers to \[5\]).
//!
//! Sweeps a *cut* subtracted from every derived deadline `a_i`, from
//! generous surplus down past zero margin into under-provisioned
//! schedules. Two curves per chain length:
//!
//! * the static validator's verdict (`TimeoutSchedule::validate`);
//! * the empirical success rate under adversarial (extreme-drift,
//!   worst-case-delay) runs.
//!
//! The experiment shows the crossover where both flip — schedules the
//! calculus accepts never fail, and schedules it rejects start failing —
//! i.e. the calculus is sound and usefully tight.

use crate::stats::Rate;
use crate::sweep::parallel_map;
use crate::table::{check, Table};
use anta::net::SyncNet;
use anta::oracle::RandomOracle;
use anta::time::SimDuration;
use payment::timebounded::{ChainOutcome, ChainSetup, ClockPlan};
use payment::{SyncParams, TimeoutSchedule, ValuePlan};

/// One ablation cell.
#[derive(Debug, Clone, Copy)]
pub struct E6Params {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Ticks subtracted from every `a_i`.
    pub cut: SimDuration,
    /// Number of seeded runs.
    pub seeds: u64,
}

/// One cell's results.
#[derive(Debug, Clone)]
pub struct E6Cell {
    /// The cell's parameters.
    pub params: E6Params,
    /// Did the static checker accept the shortened schedule?
    pub statically_valid: bool,
    /// Bob-paid success rate.
    pub success: Rate,
}

/// Runs one cell under adversarial clocks and worst-case delays.
pub fn run_cell(p: &E6Params) -> E6Cell {
    let params = SyncParams {
        rho_ppm: 100_000,
        ..SyncParams::baseline()
    };
    let base = TimeoutSchedule::derive(p.n, &params);
    let schedule = base.shortened(p.cut);
    let statically_valid = schedule.validate(&params).is_ok();
    let mut success = Rate::default();
    for seed in 0..p.seeds {
        let setup = ChainSetup::new(p.n, ValuePlan::uniform(p.n, 100), params, 0xE6)
            .with_schedule(schedule.clone());
        let mut eng = setup.build_engine(
            Box::new(SyncNet::worst_case(params.delta)),
            Box::new(RandomOracle::seeded(seed)),
            ClockPlan::Extremes,
        );
        let report = eng.run();
        let o = ChainOutcome::extract(&eng, &setup, report.quiescent);
        success.record(o.bob_paid());
    }
    E6Cell {
        params: *p,
        statically_valid,
        success,
    }
}

/// The full E6 report.
pub struct E6Report {
    /// One entry per parameter-grid cell.
    pub cells: Vec<E6Cell>,
}

/// Runs the default ablation grid.
pub fn run(seeds: u64, threads: usize) -> E6Report {
    let params = SyncParams {
        rho_ppm: 100_000,
        ..SyncParams::baseline()
    };
    let h = params.hop();
    let mut grid = Vec::new();
    for n in [2usize, 4] {
        for cut_hops in [0u64, 1, 2, 3, 4, 6, 8, 12] {
            grid.push(E6Params {
                n,
                cut: SimDuration::from_ticks(h.ticks() * cut_hops / 2),
                seeds,
            });
        }
    }
    let cells = parallel_map(&grid, threads, run_cell);
    E6Report { cells }
}

impl E6Report {
    /// Soundness: every statically valid schedule succeeded always.
    pub fn calculus_sound(&self) -> bool {
        self.cells
            .iter()
            .all(|c| !c.statically_valid || c.success.is_perfect())
    }

    /// Usefulness: some rejected schedule indeed failed empirically.
    pub fn calculus_tight(&self) -> bool {
        self.cells
            .iter()
            .any(|c| !c.statically_valid && !c.success.is_perfect())
    }

    /// Renders the crossover table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "E6 — timeout-calculus ablation: cutting the a_i deadlines",
            &["n", "cut (µs)", "validator accepts", "adversarial success"],
        );
        for c in &self.cells {
            t.push(&[
                c.params.n.to_string(),
                c.params.cut.ticks().to_string(),
                check(c.statically_valid),
                c.success.render(),
            ]);
        }
        format!(
            "{}\nCalculus sound (accepted ⇒ always succeeds): {}\nCalculus tight (rejected schedules do fail): {}\n",
            t.render(),
            check(self.calculus_sound()),
            check(self.calculus_tight()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cut_valid_and_perfect() {
        let c = run_cell(&E6Params {
            n: 3,
            cut: SimDuration::ZERO,
            seeds: 3,
        });
        assert!(c.statically_valid);
        assert!(c.success.is_perfect(), "{:?}", c.success);
    }

    #[test]
    fn huge_cut_invalid_and_failing() {
        let params = SyncParams {
            rho_ppm: 100_000,
            ..SyncParams::baseline()
        };
        let big = TimeoutSchedule::derive(3, &params).a[2] * 2;
        let c = run_cell(&E6Params {
            n: 3,
            cut: big,
            seeds: 3,
        });
        assert!(!c.statically_valid);
        assert!(!c.success.is_perfect(), "{:?}", c.success);
    }

    #[test]
    fn small_sweep_sound_and_tight() {
        let r = run(2, 0);
        assert!(r.calculus_sound(), "a statically-valid schedule failed");
        assert!(r.calculus_tight(), "no rejected schedule ever failed");
    }
}
