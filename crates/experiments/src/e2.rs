//! **E2 — Theorem 2**: impossibility under partial synchrony.
//!
//! For every deadline- or patience-based candidate in the repository, an
//! adversary schedule forcing a Definition 1 violation; plus the
//! executable indistinguishability argument (two runs the deciding escrow
//! cannot tell apart, with contradictory obligations).

use crate::table::{check, Table};
use anta::net::{AdversarialNet, Delivery, EnvelopeMeta, SyncNet};
use anta::oracle::RandomOracle;
use anta::time::{SimDuration, SimTime};
use deals::timelock::{DMsg, DealInstance, TimelockEscrow, TimelockParty};
use deals::{DealMatrix, DealOutcome};
use ledger::{Asset, CurrencyId};
use payment::impossibility::{
    cs2_violation_under_partial_synchrony, cs3_violation_under_partial_synchrony,
    indistinguishability_pair, no_timeout_never_terminates, WitnessReport,
};

/// One row of the violation matrix.
#[derive(Debug, Clone)]
pub struct ViolationRow {
    /// Which candidate protocol was attacked.
    pub candidate: &'static str,
    /// Which property broke.
    pub violated: &'static str,
    /// Human-readable account of the witness run.
    pub description: String,
}

impl From<WitnessReport> for ViolationRow {
    fn from(w: WitnessReport) -> Self {
        ViolationRow {
            candidate: w.candidate,
            violated: w.violated,
            description: w.description,
        }
    }
}

/// Attacks the HLS timelock deal protocol under partial synchrony (vote
/// delayed to one escrow) — its Safety falls, completing the matrix with
/// a non-payment candidate.
pub fn timelock_deal_violation() -> ViolationRow {
    let mut deal = DealMatrix::new(2);
    deal.add(0, 1, Asset::new(CurrencyId(0), 5));
    deal.add(1, 0, Asset::new(CurrencyId(1), 7));
    let (inst, signers) = DealInstance::generate(deal, 0xE2);
    let target = inst.escrow_pid(1);
    let net = AdversarialNet::new(move |m: &EnvelopeMeta, msg: &DMsg, _o| {
        let base = SimDuration::from_millis(2);
        match msg {
            DMsg::CommitVote { .. } if m.to == target => {
                Delivery::At(m.sent_at + SimDuration::from_secs(100))
            }
            _ => Delivery::At(m.sent_at + base),
        }
    });
    let mut eng = anta::engine::Engine::new(
        Box::new(net),
        Box::new(RandomOracle::seeded(1)),
        anta::engine::EngineConfig::default(),
    );
    for (p, s) in signers.iter().enumerate() {
        eng.add_process(
            Box::new(TimelockParty::new(&inst, p, s.clone())),
            anta::clock::DriftClock::perfect(),
        );
    }
    for k in 0..2 {
        eng.add_process(
            Box::new(TimelockEscrow::new(&inst, k, SimDuration::from_millis(200))),
            anta::clock::DriftClock::perfect(),
        );
    }
    eng.run_until(SimTime::from_secs(300));
    let outcome = deals::timelock::extract_timelock_outcome(&eng, &inst);
    assert!(
        !outcome.safe_for(&inst.deal, &[0, 1]),
        "expected a safety violation: {outcome:?}"
    );
    let victim = (0..2)
        .find(|&p| !outcome.acceptable_for(&inst.deal, p))
        .expect("victim");
    ViolationRow {
        candidate: "HLS timelock commit (deal protocol)",
        violated: "Safety [3]",
        description: format!(
            "pre-GST delay of one commit-vote split the escrows ({:?}); compliant \
             party {victim} ended with an unacceptable payoff",
            outcome.executed
        ),
    }
}

/// Sanity control: the same timelock deal commits under synchrony.
pub fn timelock_deal_control() -> DealOutcome {
    let mut deal = DealMatrix::new(2);
    deal.add(0, 1, Asset::new(CurrencyId(0), 5));
    deal.add(1, 0, Asset::new(CurrencyId(1), 7));
    let (inst, signers) = DealInstance::generate(deal, 0xE2);
    let mut eng = anta::engine::Engine::new(
        Box::new(SyncNet::new(SimDuration::from_millis(2), 8)),
        Box::new(RandomOracle::seeded(1)),
        anta::engine::EngineConfig::default(),
    );
    for (p, s) in signers.iter().enumerate() {
        eng.add_process(
            Box::new(TimelockParty::new(&inst, p, s.clone())),
            anta::clock::DriftClock::perfect(),
        );
    }
    for k in 0..2 {
        eng.add_process(
            Box::new(TimelockEscrow::new(&inst, k, SimDuration::from_millis(200))),
            anta::clock::DriftClock::perfect(),
        );
    }
    eng.run_until(SimTime::from_secs(60));
    deals::timelock::extract_timelock_outcome(&eng, &inst)
}

/// The full E2 report.
pub struct E2Report {
    /// The violation matrix rows.
    pub rows: Vec<ViolationRow>,
    /// Both halves of the indistinguishability argument checked out.
    pub indistinguishability_ok: bool,
    /// The deciding escrow's identical view in both runs.
    pub shared_prefix: Vec<String>,
}

/// Runs every witness.
pub fn run() -> E2Report {
    let rows = vec![
        cs2_violation_under_partial_synchrony(2, 100).into(),
        cs3_violation_under_partial_synchrony(3, 100).into(),
        no_timeout_never_terminates(2, 100).into(),
        timelock_deal_violation(),
    ];
    let w = indistinguishability_pair(2, 100);
    E2Report {
        rows,
        indistinguishability_ok: w.run_a_refund_correct && w.run_b_cs2_violated,
        shared_prefix: w.shared_prefix,
    }
}

impl E2Report {
    /// Renders the violation matrix plus the indistinguishability summary.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "E2 — Theorem 2: every candidate fails under partial synchrony",
            &["candidate", "violated", "witness"],
        );
        for r in &self.rows {
            t.push(&[
                r.candidate.to_string(),
                r.violated.to_string(),
                r.description.clone(),
            ]);
        }
        format!(
            "{}\nIndistinguishability pair (e_(n-1)'s view up to its deadline: {:?}):\n  run A (Bob crashed): refund correct — {}\n  run B (χ merely delayed): identical prefix forces the same refund, violating CS2 — {}\n",
            t.render(),
            self.shared_prefix,
            check(self.indistinguishability_ok),
            check(self.indistinguishability_ok),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_witnesses_materialise() {
        let r = run();
        assert_eq!(r.rows.len(), 4);
        assert!(r.indistinguishability_ok);
        let rendered = r.render();
        assert!(rendered.contains("CS2"));
        assert!(rendered.contains("CS3"));
        assert!(rendered.contains("Safety [3]"));
    }

    #[test]
    fn timelock_control_commits_under_synchrony() {
        assert!(timelock_deal_control().is_full_commit());
    }
}
