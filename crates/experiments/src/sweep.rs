//! Parallel parameter sweeps with crossbeam scoped threads.
//!
//! Each simulation run is single-threaded and deterministic; sweeps over
//! (parameters × seeds) are embarrassingly parallel. Following the
//! workspace's concurrency guides, the executor uses scoped threads over a
//! shared work counter (an atomic cursor) — no unsafe, no channels, no
//! locks: every worker accumulates `(index, result)` pairs in its own
//! buffer, and the buffers are merged into input order after the join.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over every item, using up to `threads` worker threads (0 ⇒
/// all available cores). Results are returned in input order. `f` must be
/// deterministic per item for reproducible sweeps.
pub fn parallel_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let gathered: Vec<(usize, O)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    // Disjoint per-worker buffer: no result-side contention,
                    // items are claimed via the lock-free cursor only.
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep worker panicked");
    let mut results: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    for (i, o) in gathered {
        results[i] = Some(o);
    }
    results
        .into_iter()
        .map(|o| o.expect("every index visited"))
        .collect()
}

/// Cartesian product of two parameter slices, cloned into pairs — the
/// usual shape of a sweep grid.
pub fn grid<A: Clone, B: Clone>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let items = vec![1u64, 2, 3];
        let out = parallel_map(&items, 0, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5u64];
        let out = parallel_map(&items, 64, |&x| x * 10);
        assert_eq!(out, vec![50]);
    }

    #[test]
    fn grid_product() {
        let g = grid(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[5], (2, "c"));
    }

    #[test]
    fn contention_shaped_many_tiny_items() {
        // Worst case for the old once-per-item results mutex: a large
        // number of near-zero-cost items across many workers. Output must
        // still be complete and in input order.
        let items: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&items, 8, |&x| x ^ 0xA5);
        let expect: Vec<u64> = items.iter().map(|&x| x ^ 0xA5).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn heavy_parallel_determinism() {
        // Deterministic per-item work must give identical results across
        // runs regardless of scheduling.
        let items: Vec<u64> = (0..64).collect();
        let run = || {
            parallel_map(&items, 8, |&x| {
                // A small deterministic computation.
                let mut acc = x;
                for i in 0..1_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                acc
            })
        };
        assert_eq!(run(), run());
    }
}
