//! Parallel parameter sweeps with crossbeam scoped threads.
//!
//! Each simulation run is single-threaded and deterministic; sweeps over
//! (parameters × seeds) are embarrassingly parallel. Following the
//! workspace's concurrency guides, the executor uses scoped threads over a
//! shared work counter (an atomic cursor) — no unsafe, no channels, no
//! locks: every worker accumulates `(index, result)` pairs in its own
//! buffer, and the buffers are merged into input order after the join.
//!
//! Workers are **panic-isolated**: every `f(&item)` call runs under
//! [`std::panic::catch_unwind`] with retry-once semantics, so one poisoned
//! item degrades to an [`ItemPanic`] in [`try_parallel_map`]'s result
//! instead of tearing down the whole sweep mid-merge. [`parallel_map`]
//! keeps the infallible signature for callers whose items must never fail;
//! it reports the first poisoned item *after* the join, with its index and
//! panic message, rather than aborting from inside a worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One item whose closure panicked twice (the initial call and the retry).
///
/// The `index` names the poisoned input; callers that sweep seeded
/// instances map it back to the failing seed for the campaign report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the poisoned item in the input slice.
    pub index: usize,
    /// The panic payload, when it was a string (the usual `panic!` case);
    /// `"non-string panic payload"` otherwise.
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {} panicked twice (retry exhausted): {}",
            self.index, self.message
        )
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f` over every item, using up to `threads` worker threads (0 ⇒
/// all available cores). Results are returned in input order. `f` must be
/// deterministic per item for reproducible sweeps.
///
/// A panicking item is retried once ([`try_parallel_map`]); if it panics
/// again, `parallel_map` itself panics *after* every other item finished
/// and merged — a deliberate double-panic can no longer abort sibling
/// work mid-merge, and the error names the poisoned index. Callers that
/// must survive poisoned items use [`try_parallel_map`] directly.
pub fn parallel_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(o) => o,
            Err(p) => panic!("sweep worker poisoned: {p}"),
        })
        .collect()
}

/// The panic-isolated executor under [`parallel_map`]: identical work
/// distribution (atomic cursor, disjoint per-worker buffers, input-order
/// merge), but each `f(&item)` call is wrapped in
/// [`std::panic::catch_unwind`]. A panicking item is retried **once** —
/// transient poison (e.g. an allocation blip) heals silently; an item
/// that panics twice yields `Err(ItemPanic)` in its slot while every
/// other item completes normally.
///
/// `f` is re-invoked on the same input after a caught panic, so it must
/// not leave shared captured state half-mutated across unwinding (the
/// sweeps in this workspace pass pure per-item closures, which satisfy
/// this trivially — hence the `AssertUnwindSafe` inside).
pub fn try_parallel_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<Result<O, ItemPanic>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let run_item = |i: usize| -> Result<O, ItemPanic> {
        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
            Ok(o) => Ok(o),
            // Retry once: a deterministic panic repeats, a transient one
            // heals. Either way the sweep continues.
            Err(_) => match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                Ok(o) => Ok(o),
                Err(payload) => Err(ItemPanic {
                    index: i,
                    message: payload_message(payload.as_ref()),
                }),
            },
        }
    };
    let gathered: Vec<(usize, Result<O, ItemPanic>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    // Disjoint per-worker buffer: no result-side contention,
                    // items are claimed via the lock-free cursor only.
                    let mut local: Vec<(usize, Result<O, ItemPanic>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, run_item(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker died outside an item"))
            .collect()
    })
    .expect("sweep worker died outside an item");
    let mut results: Vec<Option<Result<O, ItemPanic>>> = (0..items.len()).map(|_| None).collect();
    for (i, o) in gathered {
        results[i] = Some(o);
    }
    results
        .into_iter()
        .map(|o| o.expect("every index visited"))
        .collect()
}

/// Cartesian product of two parameter slices, cloned into pairs — the
/// usual shape of a sweep grid.
pub fn grid<A: Clone, B: Clone>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let items = vec![1u64, 2, 3];
        let out = parallel_map(&items, 0, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5u64];
        let out = parallel_map(&items, 64, |&x| x * 10);
        assert_eq!(out, vec![50]);
    }

    #[test]
    fn grid_product() {
        let g = grid(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[5], (2, "c"));
    }

    #[test]
    fn contention_shaped_many_tiny_items() {
        // Worst case for the old once-per-item results mutex: a large
        // number of near-zero-cost items across many workers. Output must
        // still be complete and in input order.
        let items: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&items, 8, |&x| x ^ 0xA5);
        let expect: Vec<u64> = items.iter().map(|&x| x ^ 0xA5).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn heavy_parallel_determinism() {
        // Deterministic per-item work must give identical results across
        // runs regardless of scheduling.
        let items: Vec<u64> = (0..64).collect();
        let run = || {
            parallel_map(&items, 8, |&x| {
                // A small deterministic computation.
                let mut acc = x;
                for i in 0..1_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                acc
            })
        };
        assert_eq!(run(), run());
    }

    /// Satellite regression: a deliberately panicking item must degrade to
    /// a counted error slot — with its index and message — while every
    /// sibling item still completes, at any thread count.
    #[test]
    fn poisoned_item_degrades_instead_of_aborting() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1usize, 4] {
            let out = try_parallel_map(&items, threads, |&x| {
                if x == 17 {
                    panic!("poisoned seed {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 17 {
                    let p = r.as_ref().expect_err("item 17 must fail");
                    assert_eq!(p.index, 17);
                    assert!(p.message.contains("poisoned seed 17"), "{}", p.message);
                } else {
                    assert_eq!(*r, Ok(i as u64 * 2));
                }
            }
        }
    }

    /// A panic that does not repeat is healed by the retry: the item lands
    /// in the `Ok` column and nothing is lost.
    #[test]
    fn transient_panic_is_retried_once() {
        let items = vec![0u64, 1, 2, 3];
        let first_attempt = AtomicUsize::new(0);
        let out = try_parallel_map(&items, 2, |&x| {
            if x == 2 && first_attempt.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            x + 100
        });
        assert_eq!(
            out,
            vec![Ok(100), Ok(101), Ok(102), Ok(103)],
            "the retry must have healed item 2"
        );
        assert_eq!(first_attempt.load(Ordering::SeqCst), 2, "one retry");
    }

    /// The infallible wrapper still fails on a double panic, but only
    /// after the full merge, with the poisoned index in the message.
    #[test]
    fn parallel_map_reports_poisoned_index_after_merge() {
        let items: Vec<u64> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            parallel_map(&items, 2, |&x| {
                if x == 5 {
                    panic!("always");
                }
                x
            })
        });
        let payload = r.expect_err("must propagate");
        let msg = payload_message(payload.as_ref());
        assert!(msg.contains("item 5"), "{msg}");
    }
}
