//! **E3 — Theorem 3**: the weak protocol under partial synchrony.
//!
//! Sweeps the three transaction-manager instantiations × patience
//! configurations × seeds under randomized partially synchronous networks
//! (including unreliable notaries for the committee manager). Claims
//! under test: Definition 2 holds in every run; with everyone patient and
//! compliant, Bob is always paid; impatience aborts cleanly, never both
//! certificates (CC).

use crate::stats::Rate;
use crate::sweep::parallel_map;
use crate::table::{check, Table};
use anta::net::PartialSyncNet;
use anta::oracle::RandomOracle;
use anta::time::{SimDuration, SimTime};
use payment::properties::{check_definition2, Compliance};
use payment::weak::{Patience, TmKind, WeakOutcome, WeakSetup};
use payment::ValuePlan;
use xcrypto::Verdict;

/// Patience configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatiencePlan {
    /// Everyone fully patient.
    AllPatient,
    /// One customer loses patience quickly.
    OneImpatient,
    /// One customer never acts (withholds); another has finite patience,
    /// guaranteeing termination via abort.
    WithholderPlusGuard,
}

impl PatiencePlan {
    fn label(&self) -> &'static str {
        match self {
            PatiencePlan::AllPatient => "all patient",
            PatiencePlan::OneImpatient => "one impatient",
            PatiencePlan::WithholderPlusGuard => "withholder + guard",
        }
    }

    fn apply(&self, mut setup: WeakSetup) -> WeakSetup {
        match self {
            PatiencePlan::AllPatient => setup,
            PatiencePlan::OneImpatient => {
                setup = setup.with_patience(0, Patience::until(SimDuration::from_millis(40)));
                setup
            }
            PatiencePlan::WithholderPlusGuard => {
                let n = setup.n();
                setup = setup.with_patience(n, Patience::absent()); // Bob never accepts
                setup = setup.with_patience(0, Patience::until(SimDuration::from_millis(400)));
                setup
            }
        }
    }
}

/// One cell of the E3 grid.
#[derive(Debug, Clone, Copy)]
pub struct E3Params {
    /// Number of escrows in the chain / sample size, per context.
    pub n: usize,
    /// Transaction-manager kind under test.
    pub tm: TmKind,
    /// The value plan / patience plan, per context.
    pub plan: PatiencePlan,
    /// Whether one committee notary is crashed.
    pub silent_notary: bool,
    /// Number of seeded runs.
    pub seeds: u64,
}

/// One cell's results.
#[derive(Debug, Clone)]
pub struct E3Cell {
    /// The cell's parameters.
    pub params: E3Params,
    /// Definition 2 all-clauses success rate.
    pub def2_ok: Rate,
    /// Certificate-consistency success rate.
    pub cc_ok: Rate,
    /// Runs that ended in a commit certificate.
    pub commits: usize,
    /// Runs that ended in an abort certificate.
    pub aborts: usize,
    /// Runs with no decision within the horizon.
    pub undecided: usize,
}

/// Runs one cell.
pub fn run_cell(p: &E3Params) -> E3Cell {
    let mut def2_ok = Rate::default();
    let mut cc_ok = Rate::default();
    let (mut commits, mut aborts, mut undecided) = (0usize, 0usize, 0usize);
    for seed in 0..p.seeds {
        let setup = p.plan.apply(WeakSetup::new(
            p.n,
            ValuePlan::with_commission(p.n, 1_000, 3),
            p.tm,
            0xE3 + seed,
        ));
        let gst = SimTime::from_millis(50 + 37 * (seed % 7));
        let net = PartialSyncNet::randomized(gst, SimDuration::from_millis(4), 8);
        let mut eng = setup.build_engine_with(
            Box::new(net),
            Box::new(RandomOracle::seeded(seed)),
            |_| None,
            |i| {
                (p.silent_notary && i == 1).then(|| Box::new(anta::process::InertProcess) as Box<_>)
            },
        );
        eng.run();
        let o = WeakOutcome::extract(&eng, &setup);
        let everyone_patient = p.plan == PatiencePlan::AllPatient;
        // Withholding Bob is modelled via patience, so the compliance map
        // stays all-compliant except conceptually Bob in that plan; we keep
        // checks conservative by treating all roles compliant — the
        // checker's conditional clauses handle the rest.
        let v = check_definition2(&o, &Compliance::all_compliant(), everyone_patient);
        def2_ok.record(v.all_ok());
        cc_ok.record(o.cc_ok);
        match o.verdict() {
            Some(Verdict::Commit) => commits += 1,
            Some(Verdict::Abort) => aborts += 1,
            None => undecided += 1,
        }
    }
    E3Cell {
        params: *p,
        def2_ok,
        cc_ok,
        commits,
        aborts,
        undecided,
    }
}

/// The full E3 report.
pub struct E3Report {
    /// One entry per parameter-grid cell.
    pub cells: Vec<E3Cell>,
}

/// Runs the default grid.
pub fn run(seeds: u64, threads: usize) -> E3Report {
    let mut grid = Vec::new();
    for tm in [
        TmKind::Trusted,
        TmKind::Contract,
        TmKind::Committee { k: 4 },
    ] {
        for plan in [
            PatiencePlan::AllPatient,
            PatiencePlan::OneImpatient,
            PatiencePlan::WithholderPlusGuard,
        ] {
            grid.push(E3Params {
                n: 3,
                tm,
                plan,
                silent_notary: false,
                seeds,
            });
        }
    }
    // Committee resilience: one crashed notary, everyone patient.
    grid.push(E3Params {
        n: 3,
        tm: TmKind::Committee { k: 4 },
        plan: PatiencePlan::AllPatient,
        silent_notary: true,
        seeds,
    });
    let cells = parallel_map(&grid, threads, run_cell);
    E3Report { cells }
}

impl E3Report {
    /// True iff Definition 2 held everywhere, CC never broke, and the
    /// all-patient cells always committed.
    pub fn theorem_holds(&self) -> bool {
        self.cells.iter().all(|c| {
            c.def2_ok.is_perfect()
                && c.cc_ok.is_perfect()
                && (c.params.plan != PatiencePlan::AllPatient
                    || (c.commits == c.def2_ok.total && c.aborts == 0))
        })
    }

    /// Renders the E3 table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "E3 — Theorem 3: weak protocol with a transaction manager",
            &[
                "TM",
                "patience",
                "faulty notary",
                "runs",
                "Def.2 holds",
                "CC",
                "commit/abort/none",
            ],
        );
        for c in &self.cells {
            t.push(&[
                format!("{:?}", c.params.tm),
                c.params.plan.label().to_string(),
                check(c.params.silent_notary),
                c.def2_ok.total.to_string(),
                c.def2_ok.render(),
                c.cc_ok.render(),
                format!("{}/{}/{}", c.commits, c.aborts, c.undecided),
            ]);
        }
        format!(
            "{}\nTheorem 3 empirically holds on this grid: {}\n",
            t.render(),
            check(self.theorem_holds())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trusted_all_patient_commits() {
        let c = run_cell(&E3Params {
            n: 2,
            tm: TmKind::Trusted,
            plan: PatiencePlan::AllPatient,
            silent_notary: false,
            seeds: 5,
        });
        assert!(c.def2_ok.is_perfect(), "{c:?}");
        assert_eq!(c.commits, 5);
    }

    #[test]
    fn committee_with_crashed_notary_still_perfect() {
        let c = run_cell(&E3Params {
            n: 2,
            tm: TmKind::Committee { k: 4 },
            plan: PatiencePlan::AllPatient,
            silent_notary: true,
            seeds: 3,
        });
        assert!(c.def2_ok.is_perfect(), "{c:?}");
        assert!(c.cc_ok.is_perfect());
        assert_eq!(c.commits, 3);
    }

    #[test]
    fn impatient_aborts_cleanly() {
        let c = run_cell(&E3Params {
            n: 2,
            tm: TmKind::Trusted,
            plan: PatiencePlan::OneImpatient,
            silent_notary: false,
            seeds: 4,
        });
        assert!(c.def2_ok.is_perfect(), "{c:?}");
        assert!(c.cc_ok.is_perfect());
        // Early abort wins against the locks racing through a pre-GST net.
        assert!(c.aborts > 0);
    }
}
