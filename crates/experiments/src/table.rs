//! Plain-text table rendering and CSV output for the experiment reports.
//!
//! No dependencies: experiments print exactly the rows EXPERIMENTS.md
//! records, and CSV lines that external plotting can consume.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable items.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "n/a".to_owned()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Formats a boolean as a check-mark cell.
pub fn check(b: bool) -> String {
    if b {
        "yes".to_owned()
    } else {
        "NO".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(&["a", "1"]);
        t.push(&["longer-name", "22"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer-name  22"));
        // Header padded to the widest cell.
        assert!(s.contains("name         value"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".to_owned(), "say \"hi\"".to_owned()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["only-one".to_owned()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(1, 2), "50.0%");
        assert_eq!(pct(0, 0), "n/a");
        assert_eq!(check(true), "yes");
        assert_eq!(check(false), "NO");
    }
}
