//! **E4 — Figures 1 and 2**: regeneration and cross-validation.
//!
//! * renders Figure 1 (the chain topology) as ASCII and DOT for any `n`;
//! * renders every Figure 2 automaton as DOT;
//! * cross-checks the declarative Figure 2 automata against the executable
//!   protocol: under identical deterministic schedules the two produce the
//!   same message-kind sequence;
//! * exhaustively explores all schedules of a small instance (n = 1,
//!   two delay buckets per message) and checks the safety clauses on every
//!   single one.

use crate::table::{check, Table};
use anta::automaton::AutomatonProcess;
use anta::clock::DriftClock;
use anta::engine::{Engine, EngineConfig, RunReport};
use anta::explore::{explore_differential, explore_parallel, DifferentialReport, ExploreConfig};
use anta::net::SyncNet;
use anta::oracle::{FixedOracle, Oracle};
use anta::trace::{TraceKind, TraceMode};
use payment::msg::PMsg;
use payment::timebounded::fig2::{all_specs, Fig2Params};
use payment::timebounded::{ChainOutcome, ChainSetup, ClockPlan};
use payment::{ChainKeys, ChainTopology, SyncParams, TimeoutSchedule, ValuePlan};
use std::sync::Arc;
use telemetry::TelemetrySink;

/// Builds the declarative Figure 2 parameters matching a `ChainSetup`-like
/// configuration (fresh keys from the same seed recipe).
fn fig2_params(n: usize, seed: u64) -> Fig2Params {
    let topo = ChainTopology::new(n);
    let keys = ChainKeys::generate(&topo, seed);
    let plan = ValuePlan::uniform(n, 100);
    Fig2Params {
        payment: keys.payment,
        bob_key: keys.customers[n].id(),
        schedule: TimeoutSchedule::derive(n, &SyncParams::baseline()),
        amounts: plan.amounts,
        bob_signer: keys.customers[n].clone(),
        escrow_signers: keys.escrows.clone(),
        pki: Arc::new(keys.pki),
        topo,
    }
}

/// A trace's `(from, to, kind)` send sequence — the protocol's observable
/// communication skeleton.
pub type Skeleton = Vec<(usize, usize, &'static str)>;

/// The sequence of `(from, to, kind)` sends in a trace — the protocol's
/// observable communication skeleton.
fn message_skeleton(eng: &Engine<PMsg>) -> Skeleton {
    eng.trace()
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceKind::Sent { from, to, msg } => Some((*from, *to, msg.kind())),
            _ => None,
        })
        .collect()
}

/// Cross-check: executable vs declarative protocol under the identical
/// deterministic schedule. Returns both skeletons.
pub fn cross_check(n: usize) -> (Skeleton, Skeleton) {
    // Executable chain.
    let setup = ChainSetup::new(n, ValuePlan::uniform(n, 100), SyncParams::baseline(), 0xE4);
    let mut exec_eng = setup.build_engine(
        Box::new(SyncNet::worst_case(setup.params.delta)),
        Box::new(FixedOracle::maximal()),
        ClockPlan::Perfect,
    );
    exec_eng.run();
    // Declarative chain (same seed recipe, same worst-case schedule).
    let p = fig2_params(n, 0xE4);
    let mut decl_eng = Engine::new(
        Box::new(SyncNet::worst_case(SyncParams::baseline().delta)),
        Box::new(FixedOracle::maximal()),
        EngineConfig::default(),
    );
    for spec in all_specs(&p) {
        decl_eng.add_process(
            Box::new(AutomatonProcess::new(Arc::new(spec))),
            DriftClock::perfect(),
        );
    }
    decl_eng.run_until(anta::time::SimTime::from_secs(3_600));
    (message_skeleton(&exec_eng), message_skeleton(&decl_eng))
}

/// Exhaustive schedule exploration of an `n`-escrow instance: every
/// combination of 2-bucket delays for every message (and 4-bucket σ for
/// every sending handler). Checks ES/CS safety clauses on each complete
/// schedule. `threads` is the explorer's worker count (0 ⇒ all cores,
/// 1 ⇒ serial); the report is bit-identical across thread counts whenever
/// the tree is exhausted within `max_runs`.
///
/// Engines run with [`TraceMode::CountersOnly`]: the Definition 1 checkers
/// read only halts, marks and final process/ledger states, so the trace
/// never clones a message — this does not change the schedule tree.
pub fn explore_instance(n: usize, threads: usize, max_runs: usize) -> anta::explore::ExploreReport {
    explore_instance_opts(n, threads, max_runs, 4)
}

/// [`explore_instance`] with an explicit σ quantisation. `sigma_buckets = 1`
/// pins every computation delay to σ_max, shrinking the tree to delay
/// choices only — that is what makes the n = 2 instance exhaustible (the
/// 4-bucket tree at n = 2 exceeds 10⁷ schedules).
pub fn explore_instance_opts(
    n: usize,
    threads: usize,
    max_runs: usize,
    sigma_buckets: usize,
) -> anta::explore::ExploreReport {
    let (build, chk) = instance_closures(n, sigma_buckets);
    explore_parallel(
        build,
        chk,
        ExploreConfig {
            max_runs,
            threads,
            split_depth: 4,
            ..Default::default()
        },
    )
}

/// [`explore_instance_opts`] with a telemetry sink attached: full mode
/// emits one `frontier` event plus per-`subtree` throughput events.
pub fn explore_instance_opts_with(
    n: usize,
    threads: usize,
    max_runs: usize,
    sigma_buckets: usize,
    sink: &mut dyn TelemetrySink,
) -> anta::explore::ExploreReport {
    let (build, chk) = instance_closures(n, sigma_buckets);
    anta::explore::explore_parallel_with(
        build,
        chk,
        ExploreConfig {
            max_runs,
            threads,
            split_depth: 4,
            ..Default::default()
        },
        sink,
    )
}

/// Reduced (DPOR-style) exploration of the same instance: state-hash
/// deduplication plus dead-branch elision, with dynamic re-splitting across
/// `threads` workers. Same exhaustion verdict and distinct violation set as
/// [`explore_instance_opts`] (checked by [`explore_instance_differential`]
/// and CI), at a fraction of the executed runs — this is what makes n = 3
/// at σ ≥ 2 buckets and n = 4 at σ = 1 exhaustible.
pub fn explore_instance_dpor(
    n: usize,
    threads: usize,
    max_runs: usize,
    sigma_buckets: usize,
) -> anta::explore::ExploreReport {
    explore_instance_dpor_with(
        n,
        threads,
        max_runs,
        sigma_buckets,
        &mut telemetry::NullSink,
    )
}

/// [`explore_instance_dpor`] with a telemetry sink attached: the reduced
/// explorer emits one `dpor_worker` event per worker and a closing `dpor`
/// summary (the stream the nightly uploads and `telemetry_check` gates).
pub fn explore_instance_dpor_with(
    n: usize,
    threads: usize,
    max_runs: usize,
    sigma_buckets: usize,
    sink: &mut dyn TelemetrySink,
) -> anta::explore::ExploreReport {
    let (build, chk) = instance_closures(n, sigma_buckets);
    anta::explore::explore_parallel_with(
        build,
        chk,
        ExploreConfig {
            max_runs,
            ..ExploreConfig::reduced(threads)
        },
        sink,
    )
}

/// Runs full and reduced exploration of the instance back to back and
/// compares verdicts — the differential correctness gate for the reduction
/// (see [`anta::explore::explore_differential`]). Telemetry from both
/// passes lands in `sink`.
pub fn explore_instance_differential(
    n: usize,
    threads: usize,
    max_runs: usize,
    sigma_buckets: usize,
    sink: &mut dyn TelemetrySink,
) -> DifferentialReport {
    let (build, chk) = instance_closures(n, sigma_buckets);
    explore_differential(
        build,
        chk,
        ExploreConfig {
            max_runs,
            prune_dead_sends: true,
            ..ExploreConfig::with_threads(threads)
        },
        sink,
    )
}

/// The build/check closure pair shared by all E4 exploration entry points:
/// an `n`-escrow chain over a 2-bucket synchronous network with the given σ
/// quantisation, checked against the Definition 1 safety clauses plus
/// strong liveness (Bob paid on every synchronous schedule).
#[allow(clippy::type_complexity)]
fn instance_closures(
    n: usize,
    sigma_buckets: usize,
) -> (
    impl Fn(Box<dyn Oracle>) -> Engine<PMsg> + Sync,
    impl Fn(&Engine<PMsg>, &RunReport) -> Result<(), String> + Sync,
) {
    let setup = Arc::new(ChainSetup::new(
        n,
        ValuePlan::uniform(n, 100),
        SyncParams::baseline(),
        0xE4,
    ));
    let build_setup = setup.clone();
    let check_setup = setup;
    (
        move |oracle: Box<dyn Oracle>| {
            let cfg = EngineConfig {
                trace_mode: TraceMode::CountersOnly,
                sigma_buckets,
                ..build_setup.engine_config()
            };
            build_setup.build_engine_cfg(
                Box::new(SyncNet {
                    delta_min: anta::time::SimDuration::ZERO,
                    delta_max: SyncParams::baseline().delta,
                    buckets: 2,
                }),
                oracle,
                ClockPlan::Perfect,
                cfg,
                |_| None,
            )
        },
        move |eng: &Engine<PMsg>, report: &RunReport| {
            let o = ChainOutcome::extract(eng, &check_setup, report.quiescent);
            let v = payment::properties::check_definition1(
                &o,
                &check_setup,
                &payment::properties::Compliance::all_compliant(),
            );
            if !v.all_ok() {
                return Err(format!("{:?}", v.violations()));
            }
            if !o.bob_paid() {
                return Err("strong liveness failed on a synchronous schedule".into());
            }
            Ok(())
        },
    )
}

/// Exhaustive schedule exploration of the n = 1 instance (serial), as
/// reported by E4.
pub fn explore_small_instance() -> anta::explore::ExploreReport {
    explore_instance(1, 1, 100_000)
}

/// The E4 report.
pub struct E4Report {
    /// Figure 1 rendered as ASCII.
    pub figure1_ascii: String,
    /// Figure 1 rendered as Graphviz DOT.
    pub figure1_dot: String,
    /// (automaton name, DOT source) per participant.
    pub figure2_dots: Vec<(String, String)>,
    /// Executable and declarative skeletons coincide.
    pub skeletons_match: bool,
    /// Number of sends in the executable skeleton.
    pub exec_skeleton_len: usize,
    /// Complete schedules executed.
    pub explored_runs: usize,
    /// The whole schedule tree was covered.
    pub exploration_exhausted: bool,
    /// Schedules violating Definition 1 safety.
    pub exploration_violations: usize,
}

/// Runs E4 for a chain of `n` escrows (figures) and the fixed small
/// instance (exploration).
pub fn run(n: usize) -> E4Report {
    let topo = ChainTopology::new(n);
    let p = fig2_params(n, 0xE4);
    let figure2_dots: Vec<(String, String)> = all_specs(&p)
        .into_iter()
        .map(|s| (s.name.clone(), s.to_dot()))
        .collect();
    let (exec_skel, decl_skel) = cross_check(n);
    // All cores: bit-identical to the serial exploration, just faster.
    let exploration = explore_instance(1, 0, 100_000);
    E4Report {
        figure1_ascii: topo.render_figure1(),
        figure1_dot: topo.to_dot(),
        figure2_dots,
        skeletons_match: exec_skel == decl_skel,
        exec_skeleton_len: exec_skel.len(),
        explored_runs: exploration.runs,
        exploration_exhausted: exploration.exhausted,
        exploration_violations: exploration.violations.len(),
    }
}

impl E4Report {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "E4 — Figures 1 & 2 regeneration and cross-validation",
            &["check", "result"],
        );
        t.push(&[
            "Figure 2 automata rendered (DOT)".to_string(),
            self.figure2_dots.len().to_string(),
        ]);
        t.push(&[
            "executable ≡ declarative message skeleton".to_string(),
            format!(
                "{} ({} sends)",
                check(self.skeletons_match),
                self.exec_skeleton_len
            ),
        ]);
        t.push(&[
            "exhaustive schedules explored (n = 1)".to_string(),
            format!(
                "{}{}",
                self.explored_runs,
                if self.exploration_exhausted {
                    " (complete)"
                } else {
                    " (budget hit)"
                }
            ),
        ]);
        t.push(&[
            "schedules violating Def. 1 safety".to_string(),
            self.exploration_violations.to_string(),
        ]);
        format!(
            "{}\nFigure 1 (n as configured):\n{}\n",
            t.render(),
            self.figure1_ascii
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeletons_match_for_small_chains() {
        for n in 1..=3 {
            let (exec, decl) = cross_check(n);
            assert_eq!(exec, decl, "n = {n}");
            // Expected message count for a successful run:
            // n×G + n×$ + n×P + (2n)×(χ or $) … exact count checked by
            // equality; sanity: non-empty and first message is a G.
            assert_eq!(exec[0].2, "G");
        }
    }

    #[test]
    fn exploration_is_exhaustive_and_clean() {
        let r = explore_small_instance();
        assert!(r.exhausted, "ran {} schedules", r.runs);
        assert!(r.all_ok(), "violations: {:?}", r.violations.first());
        assert!(r.runs > 16, "nontrivial schedule space, got {}", r.runs);
    }

    #[test]
    fn parallel_exploration_is_bit_identical_to_serial() {
        let serial = explore_instance(1, 1, 100_000);
        assert!(serial.exhausted);
        for threads in [2usize, 4] {
            let par = explore_instance(1, threads, 100_000);
            assert_eq!(par.runs, serial.runs, "threads = {threads}");
            assert_eq!(par.exhausted, serial.exhausted);
            assert_eq!(par.violations.len(), serial.violations.len());
        }
    }

    #[test]
    fn report_renders() {
        let r = run(3);
        assert!(r.skeletons_match);
        assert_eq!(r.exploration_violations, 0);
        let s = r.render();
        assert!(s.contains("c0 --- e0"));
    }
}
