//! # xchain-ledger — the escrow/bank substrate
//!
//! The paper's escrows are "banks or blockchain smart contracts" that hold
//! value in a predefined manner. This crate is that substrate:
//!
//! * [`asset`] — currencies and checked amounts (commissions mean the
//!   values differ hop by hop, possibly in different currencies);
//! * [`ledger`] — one escrow's book: accounts, direct transfers, escrow
//!   deals with `Locked → Released | Refunded` lifecycle, a full audit log,
//!   and the per-currency conservation invariant backing the **ES**
//!   (escrow security) property;
//! * [`chain`] — a SHA-256 hash-linked append-only log modelling the
//!   "permissionless blockchain" on which the smart-contract transaction
//!   manager of Theorem 3 publishes its decision.
//!
//! ## Example
//!
//! ```
//! use ledger::{Ledger, Asset, CurrencyId};
//! use xcrypto::KeyId;
//!
//! let mut book = Ledger::new();
//! let (alice, bob) = (KeyId(0), KeyId(1));
//! book.open_account(alice).unwrap();
//! book.open_account(bob).unwrap();
//! book.mint(alice, Asset::new(CurrencyId(0), 100)).unwrap();
//!
//! let deal = book.lock(alice, bob, Asset::new(CurrencyId(0), 40)).unwrap();
//! book.release(deal).unwrap();
//! assert_eq!(book.balance(bob, CurrencyId(0)), 40);
//! book.check_conservation().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asset;
pub mod chain;
pub mod ledger;

pub use asset::{Asset, CurrencyId};
pub use chain::{ChainEntry, SimChain};
pub use ledger::{AuditEntry, DealId, DealState, EscrowDeal, Ledger, LedgerError};
