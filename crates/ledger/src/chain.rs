//! A minimal hash-linked append-only log — the "permissionless blockchain"
//! substrate for the smart-contract transaction manager.
//!
//! §3 of the paper allows the weak-liveness protocol's transaction manager
//! to be *"a smart contract running on a permissionless blockchain shared by
//! every customer"*. We model the chain as an append-only log with
//! SHA-256 hash linking: the contract's inputs (lock notifications, Bob's
//! acceptance, abort requests) and its single decision certificate are
//! published as entries, and any participant can verify the log's integrity
//! and replay the contract's deterministic logic over it. What the
//! substitution preserves: *public verifiability of one totally-ordered
//! decision history* — the only property the paper's argument needs from a
//! blockchain.

use xcrypto::sha256::{sha256_concat, Digest};

/// One entry of the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEntry {
    /// Height (0-based).
    pub index: u64,
    /// Hash of the previous entry (all-zero for the genesis entry).
    pub prev_hash: Digest,
    /// Application payload (canonical wire bytes).
    pub payload: Vec<u8>,
    /// `SHA-256(index ‖ prev_hash ‖ payload)`.
    pub hash: Digest,
}

fn entry_hash(index: u64, prev_hash: &Digest, payload: &[u8]) -> Digest {
    sha256_concat(&[&index.to_be_bytes(), prev_hash, payload])
}

/// An append-only, hash-linked log.
#[derive(Debug, Clone, Default)]
pub struct SimChain {
    entries: Vec<ChainEntry>,
}

impl SimChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a payload, returning the new entry.
    pub fn append(&mut self, payload: Vec<u8>) -> &ChainEntry {
        let index = self.entries.len() as u64;
        let prev_hash = self.entries.last().map(|e| e.hash).unwrap_or([0u8; 32]);
        let hash = entry_hash(index, &prev_hash, &payload);
        self.entries.push(ChainEntry {
            index,
            prev_hash,
            payload,
            hash,
        });
        self.entries.last().expect("just pushed")
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the chain has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, oldest first.
    pub fn entries(&self) -> &[ChainEntry] {
        &self.entries
    }

    /// Head hash (hash of the latest entry), if any.
    pub fn head(&self) -> Option<Digest> {
        self.entries.last().map(|e| e.hash)
    }

    /// Verifies hash linking and per-entry hashes over the whole log.
    /// Returns the index of the first corrupt entry on failure.
    pub fn verify_integrity(&self) -> Result<(), u64> {
        let mut prev = [0u8; 32];
        for (i, e) in self.entries.iter().enumerate() {
            let expect = entry_hash(e.index, &e.prev_hash, &e.payload);
            if e.index != i as u64 || e.prev_hash != prev || e.hash != expect {
                return Err(i as u64);
            }
            prev = e.hash;
        }
        Ok(())
    }

    /// First entry whose payload satisfies `pred`.
    pub fn find(&self, mut pred: impl FnMut(&[u8]) -> bool) -> Option<&ChainEntry> {
        self.entries.iter().find(|e| pred(&e.payload))
    }

    /// Test-only corruption hook used by integrity tests.
    #[cfg(test)]
    pub(crate) fn tamper(&mut self, index: usize, new_payload: Vec<u8>) {
        self.entries[index].payload = new_payload;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_links_hashes() {
        let mut c = SimChain::new();
        assert!(c.is_empty());
        let h0 = c.append(b"genesis".to_vec()).hash;
        let e1 = c.append(b"second".to_vec()).clone();
        assert_eq!(c.len(), 2);
        assert_eq!(e1.prev_hash, h0);
        assert_eq!(c.head(), Some(e1.hash));
        c.verify_integrity().unwrap();
    }

    #[test]
    fn tampering_payload_detected() {
        let mut c = SimChain::new();
        c.append(b"a".to_vec());
        c.append(b"b".to_vec());
        c.append(b"c".to_vec());
        c.tamper(1, b"B".to_vec());
        assert_eq!(c.verify_integrity(), Err(1));
    }

    #[test]
    fn find_scans_in_order() {
        let mut c = SimChain::new();
        c.append(vec![1]);
        c.append(vec![2]);
        c.append(vec![2]);
        let found = c.find(|p| p == [2]).unwrap();
        assert_eq!(found.index, 1, "first match wins");
        assert!(c.find(|p| p == [9]).is_none());
    }

    #[test]
    fn deterministic_hashes() {
        let mut a = SimChain::new();
        let mut b = SimChain::new();
        for x in 0..10u8 {
            a.append(vec![x]);
            b.append(vec![x]);
        }
        assert_eq!(a.head(), b.head());
    }

    #[test]
    fn empty_chain_verifies() {
        assert!(SimChain::new().verify_integrity().is_ok());
        assert_eq!(SimChain::new().head(), None);
    }
}
