//! Currencies and asset amounts.
//!
//! The paper notes that the values transferred along the chain "may be
//! expressed in different currencies, or they may be objects", and that the
//! value Alice sends Chloe may exceed what Chloe sends Bob (her commission).
//! Amounts are integers in the currency's smallest unit; all arithmetic is
//! checked — an escrow that silently overflows a balance would void the
//! Escrow-security analysis.

use std::fmt;

/// A currency (or asset class). Each escrow may denominate deals in any mix
/// of currencies; conservation audits are per-currency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CurrencyId(pub u32);

impl fmt::Display for CurrencyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cur{}", self.0)
    }
}

/// A quantity of one currency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Asset {
    /// The asset class.
    pub currency: CurrencyId,
    /// Quantity in the currency's smallest unit.
    pub amount: u64,
}

impl Asset {
    /// Convenience constructor.
    pub const fn new(currency: CurrencyId, amount: u64) -> Self {
        Asset { currency, amount }
    }

    /// Zero of a currency.
    pub const fn zero(currency: CurrencyId) -> Self {
        Asset {
            currency,
            amount: 0,
        }
    }

    /// Checked addition within one currency; `None` on mismatch/overflow.
    pub fn checked_add(self, other: Asset) -> Option<Asset> {
        if self.currency != other.currency {
            return None;
        }
        Some(Asset {
            currency: self.currency,
            amount: self.amount.checked_add(other.amount)?,
        })
    }

    /// Checked subtraction within one currency; `None` on mismatch or
    /// underflow.
    pub fn checked_sub(self, other: Asset) -> Option<Asset> {
        if self.currency != other.currency {
            return None;
        }
        Some(Asset {
            currency: self.currency,
            amount: self.amount.checked_sub(other.amount)?,
        })
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.amount, self.currency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_currency() {
        let a = Asset::new(CurrencyId(0), 5);
        let b = Asset::new(CurrencyId(0), 7);
        assert_eq!(a.checked_add(b), Some(Asset::new(CurrencyId(0), 12)));
    }

    #[test]
    fn add_currency_mismatch() {
        let a = Asset::new(CurrencyId(0), 5);
        let b = Asset::new(CurrencyId(1), 7);
        assert_eq!(a.checked_add(b), None);
        assert_eq!(a.checked_sub(b), None);
    }

    #[test]
    fn overflow_and_underflow() {
        let a = Asset::new(CurrencyId(0), u64::MAX);
        assert_eq!(a.checked_add(Asset::new(CurrencyId(0), 1)), None);
        let b = Asset::new(CurrencyId(0), 3);
        assert_eq!(b.checked_sub(Asset::new(CurrencyId(0), 4)), None);
        assert_eq!(
            b.checked_sub(Asset::new(CurrencyId(0), 3)),
            Some(Asset::zero(CurrencyId(0)))
        );
    }

    #[test]
    fn display() {
        assert_eq!(Asset::new(CurrencyId(2), 41).to_string(), "41 cur2");
    }
}
