//! The escrow/bank substrate.
//!
//! §2 of the paper: *"An escrow is a specific type of process that can
//! handle values for other parties in a predefined manner. … Two customers
//! may make a deal with an escrow to place value from the first customer 'in
//! escrow', and, after a predefined period, depending on which conditions
//! are met, either complete the transfer to the second customer, or return
//! the value to the first one."*
//!
//! A [`Ledger`] is one escrow's book: customer accounts, escrow deals
//! (locked value), a complete audit log, and a per-currency conservation
//! invariant (`minted = circulating + locked`). The **ES (escrow security)**
//! property of Definition 1 — *an escrow that abides by the protocol does
//! not lose money* — is checked against exactly this invariant plus the
//! at-most-once settlement discipline of [`DealState`].

use crate::asset::{Asset, CurrencyId};
use std::collections::BTreeMap;
use xcrypto::KeyId;

/// Identifies an escrow deal within one ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DealId(pub u64);

/// Lifecycle of escrowed value. Transitions: `Locked → Released` (to the
/// beneficiary) or `Locked → Refunded` (back to the depositor); settled
/// deals never move again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DealState {
    /// Value held by the escrow.
    Locked,
    /// Value paid out to the beneficiary.
    Released,
    /// Value returned to the depositor.
    Refunded,
}

/// An escrow deal: `depositor` placed `asset` in escrow for `beneficiary`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscrowDeal {
    /// Identifier (contract/timer id, per context).
    pub id: DealId,
    /// Who funded the contract.
    pub depositor: KeyId,
    /// Who may claim it.
    pub beneficiary: KeyId,
    /// The value at stake.
    pub asset: Asset,
    /// Current lifecycle state.
    pub state: DealState,
}

/// Everything that mutates a ledger is recorded here, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEntry {
    /// A new account was opened.
    OpenAccount {
        /// The account holder.
        owner: KeyId,
    },
    /// New value entered circulation (scenario setup).
    Mint {
        /// Recipient process id.
        to: KeyId,
        /// The value at stake.
        asset: Asset,
    },
    /// Direct transfer between two customers of this escrow.
    Transfer {
        /// Sender process id.
        from: KeyId,
        /// Recipient process id.
        to: KeyId,
        /// The value at stake.
        asset: Asset,
    },
    /// Value placed in escrow.
    Lock {
        /// The deal matrix / escrow deal id, per context.
        deal: DealId,
        /// Who funded the contract.
        depositor: KeyId,
        /// Who may claim it.
        beneficiary: KeyId,
        /// The value at stake.
        asset: Asset,
    },
    /// Escrowed value paid out to the beneficiary.
    Release {
        /// The deal matrix / escrow deal id, per context.
        deal: DealId,
    },
    /// Escrowed value returned to the depositor.
    Refund {
        /// The deal matrix / escrow deal id, per context.
        deal: DealId,
    },
}

/// Ledger operation errors. The protocols treat these as *refusals* — an
/// abiding escrow never performs an invalid operation, and a Byzantine
/// customer's invalid request bounces off harmlessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// The account does not exist on this ledger.
    UnknownAccount(KeyId),
    /// The account already exists.
    DuplicateAccount(KeyId),
    /// The operation exceeded the account's balance.
    InsufficientFunds {
        /// The account that lacked cover.
        who: KeyId,
        /// What the operation required.
        need: Asset,
        /// What the account actually held.
        have: u64,
    },
    /// No such escrow deal.
    UnknownDeal(DealId),
    /// The deal has already been released or refunded.
    AlreadySettled(DealId),
    /// Balance arithmetic would overflow.
    Overflow,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::UnknownAccount(k) => write!(f, "unknown account {k}"),
            LedgerError::DuplicateAccount(k) => write!(f, "account {k} already exists"),
            LedgerError::InsufficientFunds { who, need, have } => {
                write!(f, "{who} needs {need} but holds {have}")
            }
            LedgerError::UnknownDeal(d) => write!(f, "unknown deal {d:?}"),
            LedgerError::AlreadySettled(d) => write!(f, "deal {d:?} already settled"),
            LedgerError::Overflow => write!(f, "balance overflow"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// One escrow's book of accounts and deals.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Account balances: `(owner, currency) → amount`. BTreeMap keeps audit
    /// output and conservation sums deterministic.
    balances: BTreeMap<(KeyId, CurrencyId), u64>,
    accounts: Vec<KeyId>,
    deals: Vec<EscrowDeal>,
    log: Vec<AuditEntry>,
    /// Total ever minted per currency (the conservation baseline).
    minted: BTreeMap<CurrencyId, u64>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens an account for `owner`.
    pub fn open_account(&mut self, owner: KeyId) -> Result<(), LedgerError> {
        if self.accounts.contains(&owner) {
            return Err(LedgerError::DuplicateAccount(owner));
        }
        self.accounts.push(owner);
        self.log.push(AuditEntry::OpenAccount { owner });
        Ok(())
    }

    /// True if `owner` has an account here.
    pub fn has_account(&self, owner: KeyId) -> bool {
        self.accounts.contains(&owner)
    }

    /// The account owners, in opening order.
    pub fn accounts(&self) -> &[KeyId] {
        &self.accounts
    }

    /// Balance of `who` in `currency` (zero if none).
    pub fn balance(&self, who: KeyId, currency: CurrencyId) -> u64 {
        self.balances.get(&(who, currency)).copied().unwrap_or(0)
    }

    /// Creates new value in `to`'s account (scenario setup only; audited so
    /// conservation accounting stays exact).
    pub fn mint(&mut self, to: KeyId, asset: Asset) -> Result<(), LedgerError> {
        if !self.has_account(to) {
            return Err(LedgerError::UnknownAccount(to));
        }
        let bal = self.balances.entry((to, asset.currency)).or_insert(0);
        *bal = bal.checked_add(asset.amount).ok_or(LedgerError::Overflow)?;
        let total = self.minted.entry(asset.currency).or_insert(0);
        *total = total
            .checked_add(asset.amount)
            .ok_or(LedgerError::Overflow)?;
        self.log.push(AuditEntry::Mint { to, asset });
        Ok(())
    }

    /// Direct transfer between two customers *of this escrow* (the paper
    /// assumes value moves only between customers of the same escrow).
    pub fn transfer(&mut self, from: KeyId, to: KeyId, asset: Asset) -> Result<(), LedgerError> {
        if !self.has_account(from) {
            return Err(LedgerError::UnknownAccount(from));
        }
        if !self.has_account(to) {
            return Err(LedgerError::UnknownAccount(to));
        }
        self.debit(from, asset)?;
        self.credit(to, asset)?;
        self.log.push(AuditEntry::Transfer { from, to, asset });
        Ok(())
    }

    /// Locks `asset` from `depositor` in escrow for `beneficiary`.
    pub fn lock(
        &mut self,
        depositor: KeyId,
        beneficiary: KeyId,
        asset: Asset,
    ) -> Result<DealId, LedgerError> {
        if !self.has_account(depositor) {
            return Err(LedgerError::UnknownAccount(depositor));
        }
        if !self.has_account(beneficiary) {
            return Err(LedgerError::UnknownAccount(beneficiary));
        }
        self.debit(depositor, asset)?;
        let id = DealId(self.deals.len() as u64);
        self.deals.push(EscrowDeal {
            id,
            depositor,
            beneficiary,
            asset,
            state: DealState::Locked,
        });
        self.log.push(AuditEntry::Lock {
            deal: id,
            depositor,
            beneficiary,
            asset,
        });
        Ok(id)
    }

    /// Completes the transfer to the beneficiary.
    pub fn release(&mut self, deal: DealId) -> Result<(), LedgerError> {
        let (beneficiary, asset) = {
            let d = self.deal_mut(deal)?;
            if d.state != DealState::Locked {
                return Err(LedgerError::AlreadySettled(deal));
            }
            d.state = DealState::Released;
            (d.beneficiary, d.asset)
        };
        self.credit(beneficiary, asset)?;
        self.log.push(AuditEntry::Release { deal });
        Ok(())
    }

    /// Returns the value to the depositor.
    pub fn refund(&mut self, deal: DealId) -> Result<(), LedgerError> {
        let (depositor, asset) = {
            let d = self.deal_mut(deal)?;
            if d.state != DealState::Locked {
                return Err(LedgerError::AlreadySettled(deal));
            }
            d.state = DealState::Refunded;
            (d.depositor, d.asset)
        };
        self.credit(depositor, asset)?;
        self.log.push(AuditEntry::Refund { deal });
        Ok(())
    }

    /// Looks up a deal.
    pub fn deal(&self, deal: DealId) -> Option<&EscrowDeal> {
        self.deals.get(deal.0 as usize)
    }

    /// All deals, in creation order.
    pub fn deals(&self) -> &[EscrowDeal] {
        &self.deals
    }

    /// The audit log, in order.
    pub fn audit(&self) -> &[AuditEntry] {
        &self.log
    }

    /// Value currently locked in unsettled deals, per currency.
    pub fn locked_total(&self, currency: CurrencyId) -> u64 {
        self.deals
            .iter()
            .filter(|d| d.state == DealState::Locked && d.asset.currency == currency)
            .map(|d| d.asset.amount)
            .sum()
    }

    /// Sum of all account balances in `currency`.
    pub fn circulating_total(&self, currency: CurrencyId) -> u64 {
        self.balances
            .iter()
            .filter(|((_, c), _)| *c == currency)
            .map(|(_, amount)| *amount)
            .sum()
    }

    /// The conservation invariant: for every currency,
    /// `minted = circulating + locked`. An escrow that abides by the
    /// protocol maintains this at every step (ES); any discrepancy is a
    /// bug in the escrow, not in a customer.
    pub fn check_conservation(&self) -> Result<(), String> {
        for (&currency, &minted) in &self.minted {
            let circ = self.circulating_total(currency);
            let locked = self.locked_total(currency);
            let have = circ
                .checked_add(locked)
                .ok_or("conservation sum overflow")?;
            if have != minted {
                return Err(format!(
                    "currency {currency}: minted {minted} ≠ circulating {circ} + locked {locked}"
                ));
            }
        }
        Ok(())
    }

    fn deal_mut(&mut self, deal: DealId) -> Result<&mut EscrowDeal, LedgerError> {
        self.deals
            .get_mut(deal.0 as usize)
            .ok_or(LedgerError::UnknownDeal(deal))
    }

    fn debit(&mut self, who: KeyId, asset: Asset) -> Result<(), LedgerError> {
        let bal = self.balances.entry((who, asset.currency)).or_insert(0);
        if *bal < asset.amount {
            return Err(LedgerError::InsufficientFunds {
                who,
                need: asset,
                have: *bal,
            });
        }
        *bal -= asset.amount;
        Ok(())
    }

    fn credit(&mut self, who: KeyId, asset: Asset) -> Result<(), LedgerError> {
        let bal = self.balances.entry((who, asset.currency)).or_insert(0);
        *bal = bal.checked_add(asset.amount).ok_or(LedgerError::Overflow)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CUR: CurrencyId = CurrencyId(0);

    fn setup() -> (Ledger, KeyId, KeyId) {
        let mut l = Ledger::new();
        let alice = KeyId(0);
        let bob = KeyId(1);
        l.open_account(alice).unwrap();
        l.open_account(bob).unwrap();
        l.mint(alice, Asset::new(CUR, 100)).unwrap();
        (l, alice, bob)
    }

    #[test]
    fn open_and_mint() {
        let (l, alice, bob) = setup();
        assert!(l.has_account(alice));
        assert_eq!(l.balance(alice, CUR), 100);
        assert_eq!(l.balance(bob, CUR), 0);
        assert_eq!(l.accounts().len(), 2);
        l.check_conservation().unwrap();
    }

    #[test]
    fn duplicate_account_rejected() {
        let (mut l, alice, _) = setup();
        assert_eq!(
            l.open_account(alice),
            Err(LedgerError::DuplicateAccount(alice))
        );
    }

    #[test]
    fn mint_unknown_account_rejected() {
        let mut l = Ledger::new();
        assert_eq!(
            l.mint(KeyId(9), Asset::new(CUR, 1)),
            Err(LedgerError::UnknownAccount(KeyId(9)))
        );
    }

    #[test]
    fn transfer_moves_value() {
        let (mut l, alice, bob) = setup();
        l.transfer(alice, bob, Asset::new(CUR, 30)).unwrap();
        assert_eq!(l.balance(alice, CUR), 70);
        assert_eq!(l.balance(bob, CUR), 30);
        l.check_conservation().unwrap();
    }

    #[test]
    fn transfer_insufficient_funds() {
        let (mut l, alice, bob) = setup();
        let err = l.transfer(alice, bob, Asset::new(CUR, 101)).unwrap_err();
        assert!(matches!(err, LedgerError::InsufficientFunds { .. }));
        // Nothing moved.
        assert_eq!(l.balance(alice, CUR), 100);
        assert_eq!(l.balance(bob, CUR), 0);
    }

    #[test]
    fn transfer_unknown_party() {
        let (mut l, alice, _) = setup();
        assert!(matches!(
            l.transfer(alice, KeyId(7), Asset::new(CUR, 1)),
            Err(LedgerError::UnknownAccount(_))
        ));
        assert!(matches!(
            l.transfer(KeyId(7), alice, Asset::new(CUR, 1)),
            Err(LedgerError::UnknownAccount(_))
        ));
    }

    #[test]
    fn lock_release_lifecycle() {
        let (mut l, alice, bob) = setup();
        let deal = l.lock(alice, bob, Asset::new(CUR, 40)).unwrap();
        assert_eq!(l.balance(alice, CUR), 60);
        assert_eq!(l.balance(bob, CUR), 0);
        assert_eq!(l.locked_total(CUR), 40);
        l.check_conservation().unwrap();

        l.release(deal).unwrap();
        assert_eq!(l.balance(bob, CUR), 40);
        assert_eq!(l.locked_total(CUR), 0);
        assert_eq!(l.deal(deal).unwrap().state, DealState::Released);
        l.check_conservation().unwrap();
    }

    #[test]
    fn lock_refund_lifecycle() {
        let (mut l, alice, bob) = setup();
        let deal = l.lock(alice, bob, Asset::new(CUR, 40)).unwrap();
        l.refund(deal).unwrap();
        assert_eq!(l.balance(alice, CUR), 100);
        assert_eq!(l.balance(bob, CUR), 0);
        assert_eq!(l.deal(deal).unwrap().state, DealState::Refunded);
        l.check_conservation().unwrap();
    }

    #[test]
    fn double_settlement_rejected() {
        let (mut l, alice, bob) = setup();
        let deal = l.lock(alice, bob, Asset::new(CUR, 40)).unwrap();
        l.release(deal).unwrap();
        assert_eq!(l.release(deal), Err(LedgerError::AlreadySettled(deal)));
        assert_eq!(l.refund(deal), Err(LedgerError::AlreadySettled(deal)));
        // Balances unchanged by the failed attempts.
        assert_eq!(l.balance(bob, CUR), 40);
        assert_eq!(l.balance(alice, CUR), 60);
        l.check_conservation().unwrap();
    }

    #[test]
    fn refund_then_release_rejected() {
        let (mut l, alice, bob) = setup();
        let deal = l.lock(alice, bob, Asset::new(CUR, 40)).unwrap();
        l.refund(deal).unwrap();
        assert_eq!(l.release(deal), Err(LedgerError::AlreadySettled(deal)));
        assert_eq!(l.balance(alice, CUR), 100);
    }

    #[test]
    fn lock_insufficient_funds() {
        let (mut l, alice, bob) = setup();
        assert!(matches!(
            l.lock(alice, bob, Asset::new(CUR, 200)),
            Err(LedgerError::InsufficientFunds { .. })
        ));
        l.check_conservation().unwrap();
    }

    #[test]
    fn unknown_deal() {
        let (mut l, _, _) = setup();
        assert_eq!(
            l.release(DealId(5)),
            Err(LedgerError::UnknownDeal(DealId(5)))
        );
        assert_eq!(
            l.refund(DealId(5)),
            Err(LedgerError::UnknownDeal(DealId(5)))
        );
    }

    #[test]
    fn multi_currency_isolated() {
        let (mut l, alice, bob) = setup();
        let eur = CurrencyId(1);
        l.mint(bob, Asset::new(eur, 50)).unwrap();
        l.transfer(bob, alice, Asset::new(eur, 20)).unwrap();
        assert_eq!(l.balance(alice, CUR), 100);
        assert_eq!(l.balance(alice, eur), 20);
        assert_eq!(l.balance(bob, eur), 30);
        l.check_conservation().unwrap();
    }

    #[test]
    fn audit_log_records_everything() {
        let (mut l, alice, bob) = setup();
        let deal = l.lock(alice, bob, Asset::new(CUR, 10)).unwrap();
        l.release(deal).unwrap();
        let kinds: Vec<&'static str> = l
            .audit()
            .iter()
            .map(|e| match e {
                AuditEntry::OpenAccount { .. } => "open",
                AuditEntry::Mint { .. } => "mint",
                AuditEntry::Transfer { .. } => "transfer",
                AuditEntry::Lock { .. } => "lock",
                AuditEntry::Release { .. } => "release",
                AuditEntry::Refund { .. } => "refund",
            })
            .collect();
        assert_eq!(kinds, vec!["open", "open", "mint", "lock", "release"]);
    }

    /// Random operation sequences preserve conservation and never panic.
    #[derive(Debug, Clone)]
    enum Op {
        Mint(u8, u32),
        Transfer(u8, u8, u32),
        Lock(u8, u8, u32),
        Release(u8),
        Refund(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<u32>()).prop_map(|(a, v)| Op::Mint(a, v)),
            (any::<u8>(), any::<u8>(), any::<u32>()).prop_map(|(a, b, v)| Op::Transfer(a, b, v)),
            (any::<u8>(), any::<u8>(), any::<u32>()).prop_map(|(a, b, v)| Op::Lock(a, b, v)),
            any::<u8>().prop_map(Op::Release),
            any::<u8>().prop_map(Op::Refund),
        ]
    }

    proptest! {
        #[test]
        fn prop_conservation_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut l = Ledger::new();
            for i in 0..4u32 {
                l.open_account(KeyId(i)).unwrap();
            }
            let acct = |x: u8| KeyId((x % 4) as u32);
            for op in ops {
                // Errors are fine (refusals); panics or conservation breaks are not.
                let _ = match op {
                    Op::Mint(a, v) => l.mint(acct(a), Asset::new(CUR, v as u64)).err(),
                    Op::Transfer(a, b, v) => {
                        l.transfer(acct(a), acct(b), Asset::new(CUR, v as u64)).err()
                    }
                    Op::Lock(a, b, v) => {
                        l.lock(acct(a), acct(b), Asset::new(CUR, v as u64)).err().map(|_| LedgerError::Overflow)
                    }
                    Op::Release(d) => l.release(DealId(d as u64)).err(),
                    Op::Refund(d) => l.refund(DealId(d as u64)).err(),
                };
                prop_assert!(l.check_conservation().is_ok());
            }
        }

        #[test]
        fn prop_settled_deals_are_final(release_first in any::<bool>(), amount in 1u64..1000) {
            let mut l = Ledger::new();
            l.open_account(KeyId(0)).unwrap();
            l.open_account(KeyId(1)).unwrap();
            l.mint(KeyId(0), Asset::new(CUR, amount)).unwrap();
            let deal = l.lock(KeyId(0), KeyId(1), Asset::new(CUR, amount)).unwrap();
            if release_first {
                l.release(deal).unwrap();
            } else {
                l.refund(deal).unwrap();
            }
            let before = (l.balance(KeyId(0), CUR), l.balance(KeyId(1), CUR));
            // Any further settlement attempt is rejected and changes nothing.
            prop_assert!(l.release(deal).is_err());
            prop_assert!(l.refund(deal).is_err());
            prop_assert_eq!(before, (l.balance(KeyId(0), CUR), l.balance(KeyId(1), CUR)));
        }
    }
}
