//! # xchain-htlc — hashed-timelock contracts and atomic swaps
//!
//! The deployed open-source baseline the paper's introduction situates
//! itself against: HTLC atomic swaps give *safety* (nobody can steal) but
//! no success guarantees — either side can walk away and grief the other
//! into waiting out a timelock with capital frozen, and the payer ends
//! with no transferable receipt. The comparison experiments quantify both
//! defects against the paper's protocols.
//!
//! * [`contract`] — HTLC semantics over the ledger substrate
//!   (hashlock + timelock + claim/reclaim);
//! * [`swap`] — the two-chain atomic-swap protocol as engine processes,
//!   with griefing strategies for the E5 measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod swap;

pub use contract::{Htlc, HtlcChain, HtlcError, HtlcState};
pub use swap::{ChainProcess, HMsg, SwapInitiator, SwapResponder};
