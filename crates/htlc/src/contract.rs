//! Hashed-timelock contracts over the ledger substrate.
//!
//! The deployed-OSS baseline for atomic cross-chain activity: funds are
//! locked under `(hashlock H, timelock T, beneficiary)`; the beneficiary
//! claims with a preimage `s` (`SHA-256(s) = H`) before `T` on the chain's
//! clock; after `T` the depositor may reclaim. HTLCs give atomic *swaps*
//! (money-for-money) rather than payments with success guarantees — the
//! comparison experiments quantify the difference (griefing windows,
//! locked-capital time, no χ-style receipt for the payer).

use anta::time::SimTime;
use ledger::{Asset, DealId, Ledger, LedgerError};
use xcrypto::sha256::{sha256, Digest};
use xcrypto::KeyId;

/// Status of an HTLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtlcState {
    /// Funds locked, claimable with the preimage until the timelock.
    Open,
    /// Beneficiary claimed with a valid preimage in time.
    Claimed,
    /// Depositor reclaimed after expiry.
    Reclaimed,
}

/// One hashed-timelock contract (wrapping an escrow deal on the ledger).
#[derive(Debug, Clone)]
pub struct Htlc {
    /// The deal matrix / escrow deal id, per context.
    pub deal: DealId,
    /// Who funded the contract.
    pub depositor: KeyId,
    /// Who may claim it.
    pub beneficiary: KeyId,
    /// The value at stake.
    pub asset: Asset,
    /// SHA-256 digest the preimage must match.
    pub hashlock: Digest,
    /// Chain-local expiry time.
    pub timelock: SimTime,
    /// Current lifecycle state.
    pub state: HtlcState,
    /// The preimage revealed by the claim (public once claimed — this is
    /// how the counterparty on the other chain learns it).
    pub revealed: Option<Vec<u8>>,
}

/// Errors for HTLC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtlcError {
    /// Underlying ledger refused (insufficient funds, unknown account…).
    Ledger(LedgerError),
    /// No such contract.
    Unknown,
    /// The contract is not open.
    NotOpen,
    /// `SHA-256(preimage) ≠ hashlock`.
    WrongPreimage,
    /// Claim attempted at or after the timelock.
    Expired,
    /// Reclaim attempted before the timelock.
    NotYetExpired,
}

impl From<LedgerError> for HtlcError {
    fn from(e: LedgerError) -> Self {
        HtlcError::Ledger(e)
    }
}

/// A chain (ledger) extended with HTLC semantics. Time is supplied by the
/// caller — in the simulation, the chain's escrow process passes its local
/// clock, modelling per-chain clocks that need not agree.
#[derive(Debug, Clone, Default)]
pub struct HtlcChain {
    ledger: Ledger,
    contracts: Vec<Htlc>,
}

impl HtlcChain {
    /// A fresh chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to the underlying ledger (accounts must be opened and funded
    /// through it).
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Read access to the ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Opens an HTLC: locks `asset` from `depositor` for `beneficiary`
    /// under `hashlock`, expiring at `timelock`.
    pub fn open(
        &mut self,
        depositor: KeyId,
        beneficiary: KeyId,
        asset: Asset,
        hashlock: Digest,
        timelock: SimTime,
    ) -> Result<usize, HtlcError> {
        let deal = self.ledger.lock(depositor, beneficiary, asset)?;
        self.contracts.push(Htlc {
            deal,
            depositor,
            beneficiary,
            asset,
            hashlock,
            timelock,
            state: HtlcState::Open,
            revealed: None,
        });
        Ok(self.contracts.len() - 1)
    }

    /// Claims contract `id` with `preimage` at chain time `now`.
    pub fn claim(&mut self, id: usize, preimage: &[u8], now: SimTime) -> Result<(), HtlcError> {
        let c = self.contracts.get_mut(id).ok_or(HtlcError::Unknown)?;
        if c.state != HtlcState::Open {
            return Err(HtlcError::NotOpen);
        }
        if now >= c.timelock {
            return Err(HtlcError::Expired);
        }
        if sha256(preimage) != c.hashlock {
            return Err(HtlcError::WrongPreimage);
        }
        self.ledger.release(c.deal)?;
        c.state = HtlcState::Claimed;
        c.revealed = Some(preimage.to_vec());
        Ok(())
    }

    /// Depositor reclaims contract `id` after expiry.
    pub fn reclaim(&mut self, id: usize, now: SimTime) -> Result<(), HtlcError> {
        let c = self.contracts.get_mut(id).ok_or(HtlcError::Unknown)?;
        if c.state != HtlcState::Open {
            return Err(HtlcError::NotOpen);
        }
        if now < c.timelock {
            return Err(HtlcError::NotYetExpired);
        }
        self.ledger.refund(c.deal)?;
        c.state = HtlcState::Reclaimed;
        Ok(())
    }

    /// The contract, if it exists.
    pub fn contract(&self, id: usize) -> Option<&Htlc> {
        self.contracts.get(id)
    }

    /// The preimage revealed on this chain, if any contract was claimed.
    pub fn revealed_preimage(&self) -> Option<&[u8]> {
        self.contracts.iter().find_map(|c| c.revealed.as_deref())
    }

    /// Number of contracts ever opened.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// True if no contracts were opened.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledger::CurrencyId;
    use proptest::prelude::*;

    const CUR: CurrencyId = CurrencyId(0);

    fn chain_with(alice: KeyId, bob: KeyId, fund: u64) -> HtlcChain {
        let mut c = HtlcChain::new();
        c.ledger_mut().open_account(alice).unwrap();
        c.ledger_mut().open_account(bob).unwrap();
        c.ledger_mut().mint(alice, Asset::new(CUR, fund)).unwrap();
        c
    }

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn claim_with_preimage_before_expiry() {
        let (a, b) = (KeyId(0), KeyId(1));
        let mut chain = chain_with(a, b, 100);
        let secret = b"s3cret";
        let id = chain
            .open(a, b, Asset::new(CUR, 60), sha256(secret), t(1_000))
            .unwrap();
        chain.claim(id, secret, t(500)).unwrap();
        assert_eq!(chain.contract(id).unwrap().state, HtlcState::Claimed);
        assert_eq!(chain.ledger().balance(b, CUR), 60);
        assert_eq!(chain.revealed_preimage(), Some(secret.as_slice()));
        chain.ledger().check_conservation().unwrap();
    }

    #[test]
    fn wrong_preimage_rejected() {
        let (a, b) = (KeyId(0), KeyId(1));
        let mut chain = chain_with(a, b, 100);
        let id = chain
            .open(a, b, Asset::new(CUR, 60), sha256(b"right"), t(1_000))
            .unwrap();
        assert_eq!(
            chain.claim(id, b"wrong", t(500)),
            Err(HtlcError::WrongPreimage)
        );
        assert_eq!(chain.contract(id).unwrap().state, HtlcState::Open);
        assert_eq!(chain.ledger().balance(b, CUR), 0);
    }

    #[test]
    fn late_claim_rejected() {
        let (a, b) = (KeyId(0), KeyId(1));
        let mut chain = chain_with(a, b, 100);
        let secret = b"s";
        let id = chain
            .open(a, b, Asset::new(CUR, 60), sha256(secret), t(1_000))
            .unwrap();
        assert_eq!(chain.claim(id, secret, t(1_000)), Err(HtlcError::Expired));
        assert_eq!(chain.claim(id, secret, t(2_000)), Err(HtlcError::Expired));
        chain.reclaim(id, t(1_000)).unwrap();
        assert_eq!(chain.ledger().balance(a, CUR), 100);
    }

    #[test]
    fn early_reclaim_rejected() {
        let (a, b) = (KeyId(0), KeyId(1));
        let mut chain = chain_with(a, b, 100);
        let id = chain
            .open(a, b, Asset::new(CUR, 60), sha256(b"x"), t(1_000))
            .unwrap();
        assert_eq!(chain.reclaim(id, t(999)), Err(HtlcError::NotYetExpired));
        chain.reclaim(id, t(1_000)).unwrap();
        assert_eq!(chain.contract(id).unwrap().state, HtlcState::Reclaimed);
    }

    #[test]
    fn double_settlement_rejected() {
        let (a, b) = (KeyId(0), KeyId(1));
        let mut chain = chain_with(a, b, 100);
        let secret = b"s";
        let id = chain
            .open(a, b, Asset::new(CUR, 60), sha256(secret), t(1_000))
            .unwrap();
        chain.claim(id, secret, t(10)).unwrap();
        assert_eq!(chain.claim(id, secret, t(20)), Err(HtlcError::NotOpen));
        assert_eq!(chain.reclaim(id, t(5_000)), Err(HtlcError::NotOpen));
    }

    #[test]
    fn insufficient_funds_refused() {
        let (a, b) = (KeyId(0), KeyId(1));
        let mut chain = chain_with(a, b, 10);
        assert!(matches!(
            chain.open(a, b, Asset::new(CUR, 60), sha256(b"x"), t(100)),
            Err(HtlcError::Ledger(LedgerError::InsufficientFunds { .. }))
        ));
        assert!(chain.is_empty());
    }

    proptest! {
        /// Conservation and single-settlement hold under arbitrary claim /
        /// reclaim attempts at arbitrary times.
        #[test]
        fn prop_htlc_conservation(
            amount in 1u64..1000,
            timelock in 1u64..10_000,
            attempts in proptest::collection::vec((0u64..20_000, any::<bool>(), any::<bool>()), 1..30),
        ) {
            let (a, b) = (KeyId(0), KeyId(1));
            let mut chain = chain_with(a, b, amount);
            let secret = b"prop-secret";
            let id = chain.open(a, b, Asset::new(CUR, amount), sha256(secret), t(timelock)).unwrap();
            for (at, do_claim, right_preimage) in attempts {
                if do_claim {
                    let pre: &[u8] = if right_preimage { secret } else { b"nope" };
                    let _ = chain.claim(id, pre, t(at));
                } else {
                    let _ = chain.reclaim(id, t(at));
                }
                prop_assert!(chain.ledger().check_conservation().is_ok());
            }
            // Exactly one of the terminal states, or still open.
            let st = chain.contract(id).unwrap().state;
            let (ba, bb) = (chain.ledger().balance(a, CUR), chain.ledger().balance(b, CUR));
            match st {
                HtlcState::Open => prop_assert_eq!((ba, bb), (0, 0)),
                HtlcState::Claimed => prop_assert_eq!((ba, bb), (0, amount)),
                HtlcState::Reclaimed => prop_assert_eq!((ba, bb), (amount, 0)),
            }
        }
    }
}
