//! Two-chain atomic swap over HTLCs — the deployed-OSS baseline protocol.
//!
//! The classic construction: Alice knows a secret `s`. She locks her asset
//! on chain A under `H = SHA-256(s)` with timelock `2T`; Bob, seeing that
//! lock, locks his asset on chain B under the same `H` with timelock `T`;
//! Alice claims on B before `T`, revealing `s` on-chain; Bob replays `s`
//! on A before `2T`. Safety comes from the timelock gap; *success* is
//! never guaranteed — either side can stop and grief the other into
//! waiting out a timelock with capital frozen. Experiment E5 measures
//! those locked-capital windows against the paper's protocols.

use crate::contract::HtlcChain;
use anta::process::{Ctx, Pid, Process, TimerId};
use anta::time::SimTime;
use ledger::Asset;
use xcrypto::sha256::{sha256, Digest};
use xcrypto::KeyId;

/// Messages between swap parties and chains. Chain events are broadcast to
/// both parties, modelling public on-chain state.
#[derive(Debug, Clone, PartialEq)]
pub enum HMsg {
    /// Customer asks the chain to open an HTLC.
    Open {
        /// Who funded the contract.
        depositor: KeyId,
        /// Who may claim it.
        beneficiary: KeyId,
        /// The value at stake.
        asset: Asset,
        /// SHA-256 digest the preimage must match.
        hashlock: Digest,
        /// Chain-local expiry time.
        timelock: SimTime,
    },
    /// Chain event: contract `id` opened.
    Opened {
        /// Identifier (contract/timer id, per context).
        id: usize,
        /// SHA-256 digest the preimage must match.
        hashlock: Digest,
        /// Chain-local expiry time.
        timelock: SimTime,
    },
    /// Customer claims with a preimage.
    Claim {
        /// Identifier (contract/timer id, per context).
        id: usize,
        /// The revealed hashlock preimage.
        preimage: Vec<u8>,
    },
    /// Chain event: contract `id` claimed; the preimage is now public.
    Claimed {
        /// Identifier (contract/timer id, per context).
        id: usize,
        /// The revealed hashlock preimage.
        preimage: Vec<u8>,
    },
    /// Customer reclaims after expiry.
    Reclaim {
        /// Identifier (contract/timer id, per context).
        id: usize,
    },
    /// Chain event: contract `id` reclaimed by its depositor.
    Reclaimed {
        /// Identifier (contract/timer id, per context).
        id: usize,
    },
}

/// A chain process: executes HTLC operations on its own clock and
/// broadcasts resulting events to the watchers.
#[derive(Debug, Clone)]
pub struct ChainProcess {
    chain: HtlcChain,
    watchers: Vec<Pid>,
}

impl ChainProcess {
    /// Wraps a funded [`HtlcChain`]; `watchers` receive all events.
    pub fn new(chain: HtlcChain, watchers: Vec<Pid>) -> Self {
        ChainProcess { chain, watchers }
    }

    /// The chain state (for assertions).
    pub fn chain(&self) -> &HtlcChain {
        &self.chain
    }

    fn broadcast(&self, msg: HMsg, ctx: &mut Ctx<HMsg>) {
        for &w in &self.watchers {
            ctx.send(w, msg.clone());
        }
    }
}

impl Process<HMsg> for ChainProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<HMsg>) {}

    // Collapsing these ifs into match guards would put the funds-moving
    // claim/reclaim calls inside pattern dispatch; guards must stay
    // side-effect-free.
    #[allow(clippy::collapsible_match)]
    fn on_message(&mut self, _from: Pid, msg: HMsg, ctx: &mut Ctx<HMsg>) {
        let now = ctx.now();
        match msg {
            HMsg::Open {
                depositor,
                beneficiary,
                asset,
                hashlock,
                timelock,
            } => {
                if let Ok(id) = self
                    .chain
                    .open(depositor, beneficiary, asset, hashlock, timelock)
                {
                    ctx.mark("htlc_opened", id as i64);
                    self.broadcast(
                        HMsg::Opened {
                            id,
                            hashlock,
                            timelock,
                        },
                        ctx,
                    );
                }
            }
            HMsg::Claim { id, preimage } => {
                // The ledger mutation stays in the arm body: guards must
                // remain side-effect-free around funds movement.
                if self.chain.claim(id, &preimage, now).is_ok() {
                    ctx.mark("htlc_claimed", id as i64);
                    self.broadcast(HMsg::Claimed { id, preimage }, ctx);
                }
            }
            HMsg::Reclaim { id } => {
                if self.chain.reclaim(id, now).is_ok() {
                    ctx.mark("htlc_reclaimed", id as i64);
                    self.broadcast(HMsg::Reclaimed { id }, ctx);
                }
            }
            // Chain events sent to us by mistake are ignored.
            _ => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, _ctx: &mut Ctx<HMsg>) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<HMsg>> {
        Box::new(self.clone())
    }
}

const TIMER_RECLAIM: TimerId = 1;

/// Alice (initiator): locks on chain A with `2T`, claims on chain B.
#[derive(Debug, Clone)]
pub struct SwapInitiator {
    key: KeyId,
    counterparty: KeyId,
    chain_a: Pid,
    chain_b: Pid,
    offer: Asset,
    secret: Vec<u8>,
    timelock_a: SimTime,
    my_contract: Option<usize>,
    claimed_b: bool,
    done: bool,
}

impl SwapInitiator {
    /// Builds Alice with her secret.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        key: KeyId,
        counterparty: KeyId,
        chain_a: Pid,
        chain_b: Pid,
        offer: Asset,
        secret: Vec<u8>,
        timelock_a: SimTime,
    ) -> Self {
        SwapInitiator {
            key,
            counterparty,
            chain_a,
            chain_b,
            offer,
            secret,
            timelock_a,
            my_contract: None,
            claimed_b: false,
            done: false,
        }
    }

    /// The hashlock `H = SHA-256(s)`.
    pub fn hashlock(&self) -> Digest {
        sha256(&self.secret)
    }
}

impl Process<HMsg> for SwapInitiator {
    fn on_start(&mut self, ctx: &mut Ctx<HMsg>) {
        ctx.send(
            self.chain_a,
            HMsg::Open {
                depositor: self.key,
                beneficiary: self.counterparty,
                asset: self.offer,
                hashlock: self.hashlock(),
                timelock: self.timelock_a,
            },
        );
        ctx.set_timer_at(TIMER_RECLAIM, self.timelock_a);
    }

    fn on_message(&mut self, from: Pid, msg: HMsg, ctx: &mut Ctx<HMsg>) {
        match msg {
            HMsg::Opened { id, hashlock, .. }
                if from == self.chain_a
                    && self.my_contract.is_none()
                    && hashlock == self.hashlock() =>
            {
                self.my_contract = Some(id);
            }
            HMsg::Opened { id, hashlock, .. }
                if from == self.chain_b
                // Bob's counter-lock under my hash: claim it (revealing s).
                && !self.claimed_b && hashlock == self.hashlock() =>
            {
                self.claimed_b = true;
                ctx.send(
                    self.chain_b,
                    HMsg::Claim {
                        id,
                        preimage: self.secret.clone(),
                    },
                );
                ctx.mark("alice_claimed_b", id as i64);
            }
            HMsg::Claimed { .. } if from == self.chain_b && !self.done => {
                self.done = true;
                ctx.mark("alice_swap_done", 0);
                ctx.halt();
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<HMsg>) {
        if id == TIMER_RECLAIM && !self.done {
            if let Some(cid) = self.my_contract {
                ctx.send(self.chain_a, HMsg::Reclaim { id: cid });
                ctx.mark("alice_reclaimed", cid as i64);
            }
            ctx.halt();
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<HMsg>> {
        Box::new(self.clone())
    }
}

/// Bob (responder): counter-locks on chain B with `T < 2T`, learns `s`
/// from Alice's claim, replays it on chain A.
#[derive(Debug, Clone)]
pub struct SwapResponder {
    key: KeyId,
    counterparty: KeyId,
    chain_a: Pid,
    chain_b: Pid,
    offer: Asset,
    timelock_b: SimTime,
    my_contract: Option<usize>,
    their_contract: Option<usize>,
    claimed_a: bool,
    done: bool,
    /// A griefing responder never counter-locks.
    pub participate: bool,
}

impl SwapResponder {
    /// Builds Bob.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        key: KeyId,
        counterparty: KeyId,
        chain_a: Pid,
        chain_b: Pid,
        offer: Asset,
        timelock_b: SimTime,
    ) -> Self {
        SwapResponder {
            key,
            counterparty,
            chain_a,
            chain_b,
            offer,
            timelock_b,
            my_contract: None,
            their_contract: None,
            claimed_a: false,
            done: false,
            participate: true,
        }
    }
}

impl Process<HMsg> for SwapResponder {
    fn on_start(&mut self, ctx: &mut Ctx<HMsg>) {
        ctx.set_timer_at(TIMER_RECLAIM, self.timelock_b);
    }

    fn on_message(&mut self, from: Pid, msg: HMsg, ctx: &mut Ctx<HMsg>) {
        match msg {
            HMsg::Opened { id, hashlock, .. }
                if from == self.chain_a
                // Alice's lock appeared: counter-lock under the same hash.
                && self.their_contract.is_none() && self.participate =>
            {
                self.their_contract = Some(id);
                ctx.send(
                    self.chain_b,
                    HMsg::Open {
                        depositor: self.key,
                        beneficiary: self.counterparty,
                        asset: self.offer,
                        hashlock,
                        timelock: self.timelock_b,
                    },
                );
            }
            HMsg::Opened { id, .. } if from == self.chain_b && self.my_contract.is_none() => {
                self.my_contract = Some(id);
            }
            HMsg::Claimed { preimage, .. } if from == self.chain_b && !self.claimed_a => {
                // Alice revealed s: replay it on chain A.
                if let Some(their) = self.their_contract {
                    self.claimed_a = true;
                    ctx.send(
                        self.chain_a,
                        HMsg::Claim {
                            id: their,
                            preimage,
                        },
                    );
                    ctx.mark("bob_claimed_a", their as i64);
                }
            }
            HMsg::Claimed { .. } if from == self.chain_a && self.claimed_a && !self.done => {
                self.done = true;
                ctx.mark("bob_swap_done", 0);
                ctx.halt();
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<HMsg>) {
        if id == TIMER_RECLAIM && !self.done && !self.claimed_a {
            if let Some(cid) = self.my_contract {
                ctx.send(self.chain_b, HMsg::Reclaim { id: cid });
                ctx.mark("bob_reclaimed", cid as i64);
            }
            // Keep listening: Alice might still claim late-ish within our
            // observation of chain A (we can replay any time before 2T).
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn box_clone(&self) -> Box<dyn Process<HMsg>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::HtlcState;
    use anta::clock::DriftClock;
    use anta::engine::{Engine, EngineConfig};
    use anta::net::SyncNet;
    use anta::oracle::RandomOracle;
    use anta::time::SimDuration;
    use ledger::CurrencyId;

    const CUR_A: CurrencyId = CurrencyId(0);
    const CUR_B: CurrencyId = CurrencyId(1);
    const ALICE: KeyId = KeyId(0);
    const BOB: KeyId = KeyId(1);

    /// pids: 0 = Alice, 1 = Bob, 2 = chain A, 3 = chain B.
    fn build(t: u64, participate: bool, alice_secret: Option<Vec<u8>>) -> Engine<HMsg> {
        let mut chain_a = HtlcChain::new();
        chain_a.ledger_mut().open_account(ALICE).unwrap();
        chain_a.ledger_mut().open_account(BOB).unwrap();
        chain_a
            .ledger_mut()
            .mint(ALICE, Asset::new(CUR_A, 100))
            .unwrap();
        let mut chain_b = HtlcChain::new();
        chain_b.ledger_mut().open_account(ALICE).unwrap();
        chain_b.ledger_mut().open_account(BOB).unwrap();
        chain_b
            .ledger_mut()
            .mint(BOB, Asset::new(CUR_B, 200))
            .unwrap();

        let mut eng = Engine::new(
            Box::new(SyncNet::worst_case(SimDuration::from_millis(2))),
            Box::new(RandomOracle::seeded(1)),
            EngineConfig::default(),
        );
        match alice_secret {
            Some(secret) => {
                let alice = SwapInitiator::new(
                    ALICE,
                    BOB,
                    2,
                    3,
                    Asset::new(CUR_A, 100),
                    secret,
                    SimTime::from_millis(2 * t),
                );
                eng.add_process(Box::new(alice), DriftClock::perfect());
            }
            None => {
                // Alice locks but never claims (crashes after locking):
                // modelled by an initiator whose "claim" path is disabled
                // via an impossible hash — she locks under H(s) but the
                // responder-side claim will never reveal; simplest: use a
                // SwapInitiator and crash it right after start.
                let alice = SwapInitiator::new(
                    ALICE,
                    BOB,
                    2,
                    3,
                    Asset::new(CUR_A, 100),
                    b"never-revealed".to_vec(),
                    SimTime::from_millis(2 * t),
                );
                #[derive(Debug)]
                struct LockOnly(SwapInitiator);
                impl Clone for LockOnly {
                    fn clone(&self) -> Self {
                        LockOnly(self.0.clone())
                    }
                }
                impl Process<HMsg> for LockOnly {
                    fn on_start(&mut self, ctx: &mut Ctx<HMsg>) {
                        self.0.on_start(ctx);
                    }
                    fn on_message(&mut self, from: Pid, msg: HMsg, ctx: &mut Ctx<HMsg>) {
                        // Track her own contract and reclaim on expiry, but
                        // never claim on chain B.
                        if let HMsg::Opened { .. } = &msg {
                            if from == 2 {
                                self.0.on_message(from, msg, ctx);
                            }
                        }
                    }
                    fn on_timer(&mut self, id: TimerId, ctx: &mut Ctx<HMsg>) {
                        self.0.on_timer(id, ctx);
                    }
                    fn as_any(&self) -> &dyn std::any::Any {
                        self
                    }
                    fn box_clone(&self) -> Box<dyn Process<HMsg>> {
                        Box::new(self.clone())
                    }
                }
                eng.add_process(Box::new(LockOnly(alice)), DriftClock::perfect());
            }
        }
        let mut bob = SwapResponder::new(
            BOB,
            ALICE,
            2,
            3,
            Asset::new(CUR_B, 200),
            SimTime::from_millis(t),
        );
        bob.participate = participate;
        eng.add_process(Box::new(bob), DriftClock::perfect());
        eng.add_process(
            Box::new(ChainProcess::new(chain_a, vec![0, 1])),
            DriftClock::perfect(),
        );
        eng.add_process(
            Box::new(ChainProcess::new(chain_b, vec![0, 1])),
            DriftClock::perfect(),
        );
        eng
    }

    #[test]
    fn happy_swap_exchanges_both_assets() {
        let mut eng = build(1_000, true, Some(b"swap-secret".to_vec()));
        eng.run_until(SimTime::from_secs(10));
        let a = eng.process_as::<ChainProcess>(2).unwrap().chain();
        let b = eng.process_as::<ChainProcess>(3).unwrap().chain();
        assert_eq!(a.ledger().balance(BOB, CUR_A), 100, "Bob got Alice's asset");
        assert_eq!(
            b.ledger().balance(ALICE, CUR_B),
            200,
            "Alice got Bob's asset"
        );
        a.ledger().check_conservation().unwrap();
        b.ledger().check_conservation().unwrap();
        assert_eq!(a.contract(0).unwrap().state, HtlcState::Claimed);
        assert_eq!(b.contract(0).unwrap().state, HtlcState::Claimed);
    }

    #[test]
    fn griefing_responder_strands_alice_capital_until_2t() {
        let t = 500u64;
        let mut eng = build(t, false, Some(b"secret".to_vec()));
        eng.run_until(SimTime::from_secs(10));
        let a = eng.process_as::<ChainProcess>(2).unwrap().chain();
        // Alice reclaimed, but only after 2T.
        assert_eq!(a.contract(0).unwrap().state, HtlcState::Reclaimed);
        assert_eq!(a.ledger().balance(ALICE, CUR_A), 100);
        let reclaim_time = eng
            .trace()
            .marks("alice_reclaimed")
            .next()
            .map(|(_, real, _, _)| real)
            .expect("reclaim happened");
        assert!(
            reclaim_time >= SimTime::from_millis(2 * t),
            "capital locked for the full griefing window: {reclaim_time}"
        );
    }

    #[test]
    fn unrevealing_initiator_both_reclaim() {
        let t = 500u64;
        let mut eng = build(t, true, None);
        eng.run_until(SimTime::from_secs(10));
        let a = eng.process_as::<ChainProcess>(2).unwrap().chain();
        let b = eng.process_as::<ChainProcess>(3).unwrap().chain();
        assert_eq!(a.contract(0).unwrap().state, HtlcState::Reclaimed);
        assert_eq!(b.contract(0).unwrap().state, HtlcState::Reclaimed);
        assert_eq!(a.ledger().balance(ALICE, CUR_A), 100);
        assert_eq!(b.ledger().balance(BOB, CUR_B), 200);
    }
}
